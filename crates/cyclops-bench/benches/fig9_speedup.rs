//! Figure 9 (§6.3): overall performance.
//!
//! 1. speedup of Cyclops and CyclopsMT over Hama with 48 workers on every
//!    workload (hash partition),
//! 2. scalability over 6/12/24/48 workers, normalized to Hama with 6.
//!
//! Set `CYCLOPS_FULL=1` to run the full scalability sweep; the default runs
//! panel 1 plus a reduced sweep (6 and 24 workers) to stay fast on small
//! machines. Set `CYCLOPS_BENCH_JSON=<path>` to additionally write panel 1
//! as a machine-readable JSON baseline (the committed `BENCH_fig9.json`).
//! Panel 1b diffs the fresh Cyclops bytes/time per workload against the
//! committed baseline (override its path with `CYCLOPS_BENCH_BASELINE`).
//! PageRank/SSSP rows also carry hybrid-replication fields (replication
//! factor and total bytes at the auto degree threshold, asserted bitwise
//! identical to the full-replication run).

use cyclops_bench::report::{self, JsonReport, Table};
use cyclops_bench::workloads::{self, run_on_cyclops, run_on_hama};
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

fn main() {
    let fraction = workloads::scale();
    let full = std::env::var("CYCLOPS_FULL").is_ok();
    report::heading(&format!("Figure 9: overall performance (scale {fraction})"));

    // ---- Panel 1: speedup over Hama at 48 workers. ----
    report::subheading("Fig 9(1): speedup over Hama, 48 workers, hash partition");
    let mut table = Table::new(&[
        "workload",
        "Hama (s)",
        "Cyclops (s)",
        "CyclopsMT (s)",
        "Cyclops speedup",
        "CyclopsMT speedup",
    ]);
    let mut json = JsonReport::new("fig9_speedup_panel1");
    json.meta("scale", fraction).meta("workers", 48usize);
    let mut current: Vec<(String, f64, usize)> = Vec::new();
    for w in workloads::paper_workloads() {
        let g = workloads::gen_graph(w.dataset, fraction);
        let flat = workloads::paper_cluster(48);
        let p48 = HashPartitioner.partition(&g, 48);
        let hama = run_on_hama(&w, &g, &p48, &flat, fraction);
        let cy = run_on_cyclops(&w, &g, &p48, &flat, fraction);
        let mt_cluster = workloads::paper_cluster_mt(48);
        let p6 = HashPartitioner.partition(&g, mt_cluster.num_workers());
        let mt = run_on_cyclops(&w, &g, &p6, &mt_cluster, fraction);
        table.row(vec![
            format!("{} {}", w.algo, w.dataset),
            report::secs(hama.elapsed),
            report::secs(cy.elapsed),
            report::secs(mt.elapsed),
            report::speedup(hama.elapsed.as_secs_f64() / cy.elapsed.as_secs_f64()),
            report::speedup(hama.elapsed.as_secs_f64() / mt.elapsed.as_secs_f64()),
        ]);
        let mut row = vec![
            ("workload", format!("{} {}", w.algo, w.dataset).into()),
            ("hama_s", hama.elapsed.as_secs_f64().into()),
            ("cyclops_s", cy.elapsed.as_secs_f64().into()),
            ("cyclops_mt_s", mt.elapsed.as_secs_f64().into()),
            (
                "cyclops_speedup",
                (hama.elapsed.as_secs_f64() / cy.elapsed.as_secs_f64()).into(),
            ),
            (
                "cyclops_mt_speedup",
                (hama.elapsed.as_secs_f64() / mt.elapsed.as_secs_f64()).into(),
            ),
            ("hama_messages", hama.counters.messages.into()),
            ("cyclops_messages", cy.counters.messages.into()),
            ("hama_bytes", hama.counters.bytes.into()),
            ("cyclops_bytes", cy.counters.bytes.into()),
            ("cyclops_replication_factor", cy.replication_factor.into()),
        ];
        // Hybrid replication at the auto threshold — PageRank and SSSP have
        // tuned entry points. Both sides run at the convergence epsilon
        // (messaging a cold vertex trades standing per-superstep replica
        // costs for a one-shot direct frame, so the byte balance is a
        // steady-state property): `hybrid_bytes` counts replica updates AND
        // direct messages and compares against `hybrid_full_bytes`, the
        // threshold-0 run at identical settings.
        if matches!(w.algo, workloads::Algo::PageRank | workloads::Algo::Sssp) {
            let eps = workloads::PR_CONVERGENCE_EPSILON;
            let auto = p48.auto_replicate_threshold(&g);
            let full = workloads::run_on_cyclops_threshold(&w, &g, &p48, &flat, 0, eps);
            let hy = workloads::run_on_cyclops_threshold(&w, &g, &p48, &flat, auto, eps);
            if let Some(v) = (full.values_f64.as_ref()).zip(hy.values_f64.as_ref()) {
                assert_eq!(v.0, v.1, "hybrid results must be bitwise identical");
            }
            row.extend([
                ("hybrid_auto_threshold", u64::from(auto).into()),
                ("hybrid_replication_factor", hy.replication_factor.into()),
                ("hybrid_full_bytes", full.counters.bytes.into()),
                ("hybrid_bytes", hy.counters.bytes.into()),
                ("hybrid_direct_bytes", hy.direct_bytes.into()),
            ]);
        }
        json.row(row);
        current.push((
            format!("{} {}", w.algo, w.dataset),
            cy.elapsed.as_secs_f64(),
            cy.counters.bytes,
        ));
    }
    table.print();
    println!(
        "  paper: Cyclops 1.33x-5.03x, CyclopsMT 2.06x-8.69x; largest on Wiki, smallest on SSSP"
    );
    // Read the committed baseline BEFORE `CYCLOPS_BENCH_JSON` may overwrite
    // it, so the delta panel diffs against what was committed.
    let baseline =
        std::env::var("CYCLOPS_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_fig9.json".into());
    let baseline_text = std::fs::read_to_string(&baseline);
    if let Ok(path) = std::env::var("CYCLOPS_BENCH_JSON") {
        let path = std::path::PathBuf::from(path);
        match json.write(&path) {
            Ok(()) => println!("  wrote JSON baseline to {}", path.display()),
            Err(e) => eprintln!("  failed to write {}: {e}", path.display()),
        }
    }

    // ---- Panel 1b: per-workload delta vs the committed baseline. ----
    match baseline_text {
        Ok(text) => {
            report::subheading(&format!("Fig 9(1b): delta vs committed {baseline}"));
            let base = report::parse_json_rows(&text);
            let mut table = Table::new(&[
                "workload",
                "bytes (base)",
                "bytes (now)",
                "bytes delta",
                "time base (s)",
                "time now (s)",
                "time delta",
            ]);
            let pct = |old: f64, new: f64| {
                if old > 0.0 {
                    format!("{:+.1}%", 100.0 * (new - old) / old)
                } else {
                    "-".into()
                }
            };
            for (name, now_s, now_bytes) in &current {
                let Some(row) = base
                    .iter()
                    .find(|r| r.get("workload").map(String::as_str) == Some(name))
                else {
                    continue;
                };
                let parse = |key: &str| row.get(key).and_then(|v| v.parse::<f64>().ok());
                let (Some(base_bytes), Some(base_s)) = (parse("cyclops_bytes"), parse("cyclops_s"))
                else {
                    continue;
                };
                table.row(vec![
                    name.clone(),
                    report::count(base_bytes as usize),
                    report::count(*now_bytes),
                    pct(base_bytes, *now_bytes as f64),
                    format!("{base_s:.3}"),
                    format!("{now_s:.3}"),
                    pct(base_s, *now_s),
                ]);
            }
            table.print();
            println!(
                "  (byte deltas are deterministic wire-format effects; time deltas\n\
                 \x20 are quick-mode wall clock and correspondingly noisy)"
            );
        }
        Err(_) => println!("  (no committed baseline at {baseline}; skipping delta table)"),
    }

    // ---- Panel 2: scalability. ----
    let worker_counts: Vec<usize> = if full {
        vec![6, 12, 24, 48]
    } else {
        vec![6, 24]
    };
    report::subheading(&format!(
        "Fig 9(2): scalability over {worker_counts:?} workers (normalized to Hama/6)"
    ));
    let mut table = Table::new(&["workload", "workers", "Hama", "Cyclops", "CyclopsMT"]);
    for w in workloads::paper_workloads() {
        let g = workloads::gen_graph(w.dataset, fraction);
        let mut hama6 = None;
        for &workers in &worker_counts {
            let flat = workloads::paper_cluster(workers);
            let p = HashPartitioner.partition(&g, workers);
            let hama = run_on_hama(&w, &g, &p, &flat, fraction);
            let cy = run_on_cyclops(&w, &g, &p, &flat, fraction);
            let mt_cluster = workloads::paper_cluster_mt(workers);
            let pmt = HashPartitioner.partition(&g, mt_cluster.num_workers());
            let mt = run_on_cyclops(&w, &g, &pmt, &mt_cluster, fraction);
            let base = *hama6.get_or_insert(hama.elapsed.as_secs_f64());
            table.row(vec![
                format!("{} {}", w.algo, w.dataset),
                workers.to_string(),
                report::speedup(base / hama.elapsed.as_secs_f64()),
                report::speedup(base / cy.elapsed.as_secs_f64()),
                report::speedup(base / mt.elapsed.as_secs_f64()),
            ]);
        }
    }
    table.print();
    println!(
        "  note: the simulated cluster runs on the host's cores; with one core,\n\
         \x20 wall time measures total work, so adding workers shows overhead,\n\
         \x20 not parallel speedup (see EXPERIMENTS.md)."
    );
}
