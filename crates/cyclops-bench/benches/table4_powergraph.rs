//! Table 4 (§6.12): CyclopsMT vs PowerGraph, PageRank on the four web/social
//! graphs under hash-based and heuristic partitioning.
//!
//! Reported per (dataset, partitioner): execution time, average replicas
//! per vertex, total messages, messages-per-replica ratio, and the CMP share
//! of execution time. The paper's headline: comparable replication factors,
//! but PowerGraph sends ~5 messages per replica per iteration vs at most 1
//! for Cyclops, so Cyclops sends ~5-6x fewer messages.

use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads::{self, run_on_cyclops, run_on_gas};
use cyclops_partition::{
    EdgeCutPartitioner, GreedyVertexCut, HashPartitioner, MultilevelPartitioner, RandomVertexCut,
    VertexCutPartitioner,
};

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!(
        "Table 4: CyclopsMT vs PowerGraph, PageRank (scale {fraction})"
    ));

    for heuristic in [false, true] {
        report::subheading(if heuristic {
            "Heuristic partition (Cyclops: Metis edge-cut; PG: coordinated greedy vertex-cut)"
        } else {
            "Hash-based partition (Cyclops: vertex hash; PG: random edge placement)"
        });
        let mut table = Table::new(&[
            "dataset",
            "Cy time (s)",
            "PG time (s)",
            "Cy replicas",
            "PG replicas",
            "Cy msgs",
            "PG msgs",
            "msg ratio",
            "Cy msg/rep/iter",
            "PG msg/rep/iter",
            "Cy CMP%",
        ]);
        for w in &workloads::paper_workloads()[..4] {
            let g = workloads::gen_graph(w.dataset, fraction);

            // CyclopsMT on 6 machines x 8 threads.
            let mt_cluster = workloads::paper_cluster_mt(48);
            let edge_cut = if heuristic {
                MultilevelPartitioner::default().partition(&g, mt_cluster.num_workers())
            } else {
                HashPartitioner.partition(&g, mt_cluster.num_workers())
            };
            let cy = run_on_cyclops(w, &g, &edge_cut, &mt_cluster, fraction);

            // PowerGraph runs one process per machine: the vertex-cut has 6
            // parts, like the paper's 6-machine deployment.
            let gas_cluster = cyclops_net::ClusterSpec::flat(6, 1);
            let vertex_cut = if heuristic {
                GreedyVertexCut::default().partition(&g, 6)
            } else {
                RandomVertexCut::default().partition(&g, 6)
            };
            let pg = run_on_gas(w, &g, &vertex_cut, &gas_cluster);

            let cy_phases = cy
                .stats
                .iter()
                .fold(cyclops_net::PhaseTimes::default(), |a, s| {
                    a.merge(&s.phase_times)
                });
            let cmp_pct = 100.0 * cy_phases.compute.as_secs_f64()
                / cy_phases.total().as_secs_f64().max(1e-12);

            // Messages per replica per iteration.
            let cy_replicas = cy.ingress.map(|i| i.total_replicas).unwrap_or(0).max(1);
            let pg_mirrors = vertex_cut.total_mirrors().max(1);
            let cy_rate =
                cy.counters.messages as f64 / (cy_replicas as f64 * cy.supersteps.max(1) as f64);
            let pg_rate =
                pg.counters.messages as f64 / (pg_mirrors as f64 * pg.supersteps.max(1) as f64);

            table.row(vec![
                w.dataset.to_string(),
                report::secs(cy.elapsed),
                report::secs(pg.elapsed),
                format!("{:.2}", cy.replication_factor),
                format!("{:.2}", pg.replication_factor),
                report::count(cy.counters.messages),
                report::count(pg.counters.messages),
                format!(
                    "{:.1}x",
                    pg.counters.messages as f64 / cy.counters.messages.max(1) as f64
                ),
                format!("{cy_rate:.2}"),
                format!("{pg_rate:.2}"),
                format!("{cmp_pct:.0}%"),
            ]);
        }
        table.print();
    }
    println!(
        "  paper: comparable replication factors; PG sends ~5 msgs/replica/iter vs\n\
         \x20 <=1 for Cyclops -> ~5-6x message ratio. (Cy replicas counted per the\n\
         \x20 edge-cut definition, PG per vertex-cut incl. masters, as the paper does.)"
    );

    // ---- Replication factor vs hybrid degree threshold. ----
    // Cold boundary vertices (combined degree below the threshold) lose their
    // replicas and fall back to direct messages, so the factor can only fall
    // as the threshold rises; `auto` picks the traffic-model minimum.
    report::subheading("Replication factor vs --replicate-threshold (hash partition, 48 workers)");
    let thresholds: &[u32] = &[0, 2, 4, 8, 16, 64];
    let mut header: Vec<String> = vec!["dataset".into()];
    header.extend(thresholds.iter().map(|t| format!("t={t}")));
    header.push("auto".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut sweep_table = Table::new(&header_refs);
    for w in &workloads::paper_workloads()[..4] {
        let g = workloads::gen_graph(w.dataset, fraction);
        let p = HashPartitioner.partition(&g, 48);
        let mut row = vec![w.dataset.to_string()];
        row.extend(
            p.replication_factor_sweep(&g, thresholds)
                .iter()
                .map(|(_, f)| format!("{f:.3}")),
        );
        let auto = p.auto_replicate_threshold(&g);
        row.push(format!(
            "{:.3} (t={auto})",
            p.replication_factor_at_threshold(&g, auto)
        ));
        sweep_table.row(row);
    }
    sweep_table.print();
    println!(
        "  t=0 is full replication (the paper's immutable view); higher thresholds\n\
         \x20 trade replicas for direct messages on cold boundary vertices."
    );

    // ---- Memory vs replication threshold. ----
    // The replication factor sweep above counts replicas; this panel prices
    // them, using the same capacity-exact `memory_breakdown` audit that the
    // `--mem` tracking allocator is tested against. "boundary" is the sum of
    // the `Replicas` and `DirectSlots` ledgers: everything the hybrid
    // threshold can trade, and the bytes the paper's Table 4 memory column
    // is about.
    report::subheading("Plan memory vs --replicate-threshold (hash partition, 48 workers)");
    // Arming makes `attribute_memory` re-materialize every plan vector at
    // exact capacity, so the breakdown reports the ledger itself rather
    // than builder growth slack. One-way and process-global — which is why
    // this panel runs after all the timed sections above.
    cyclops_obs::mem::arm();
    let mut mem_table = Table::new(&[
        "dataset",
        "full boundary",
        "auto boundary",
        "t=8 boundary",
        "auto replicas",
        "auto direct",
        "auto saving",
    ]);
    for w in &workloads::paper_workloads()[..4] {
        let g = workloads::gen_graph(w.dataset, fraction);
        let p = HashPartitioner.partition(&g, 48);
        let auto = p.auto_replicate_threshold(&g);
        let boundary = |t: u32| {
            let b = cyclops_engine::CyclopsPlan::build_parallel_with_threshold(&g, &p, t)
                .memory_breakdown();
            (b.replicas + b.direct_slots, b.replicas, b.direct_slots)
        };
        let (full, _, _) = boundary(0);
        let (auto_total, auto_reps, auto_direct) = boundary(auto);
        let (t8, _, _) = boundary(8);
        assert!(
            auto_total < full,
            "{}: auto threshold {auto} must shrink boundary memory \
             ({auto_total} vs {full} bytes at t=0)",
            w.dataset
        );
        mem_table.row(vec![
            w.dataset.to_string(),
            report::bytes(full),
            format!("{} (t={auto})", report::bytes(auto_total)),
            report::bytes(t8),
            report::bytes(auto_reps),
            report::bytes(auto_direct),
            format!("{:.1}%", 100.0 * (full - auto_total) as f64 / full as f64),
        ]);
    }
    mem_table.print();
    println!(
        "  boundary = Replicas + DirectSlots bytes from CyclopsPlan::memory_breakdown\n\
         \x20 (capacity-exact; equals what the --mem allocator tracks). auto drops cold\n\
         \x20 replicas for slim direct slots, so its boundary bytes sit strictly below\n\
         \x20 full replication on every power-law graph."
    );
}
