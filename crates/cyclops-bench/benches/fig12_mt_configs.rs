//! Figure 12 (§6.5): CyclopsMT configuration sweep.
//!
//! PageRank on GWeb under `MxWxT/R` configurations: scaling workers
//! (6xWx1), scaling threads (6x1xT), and scaling receiver threads
//! (6x1x8/R), with the SYN / CMP / SND breakdown per configuration.

use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads::{self, run_on_cyclops};
use cyclops_graph::Dataset;
use cyclops_net::ClusterSpec;
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!(
        "Figure 12: CyclopsMT configurations, PageRank on GWeb (scale {fraction})"
    ));
    let g = workloads::gen_graph(Dataset::GWeb, fraction);
    let w = workloads::paper_workloads()[1];

    let configs: Vec<ClusterSpec> = vec![
        // 6xWx1: flat Cyclops, more single-threaded workers per machine.
        ClusterSpec::flat(6, 1),
        ClusterSpec::flat(6, 2),
        ClusterSpec::flat(6, 4),
        ClusterSpec::flat(6, 8),
        // 6x1xT: one worker per machine, more compute threads.
        ClusterSpec::mt(6, 1, 1),
        ClusterSpec::mt(6, 2, 1),
        ClusterSpec::mt(6, 4, 1),
        ClusterSpec::mt(6, 8, 1),
        // 6x1x8/R: receiver-thread sweep.
        ClusterSpec::mt(6, 8, 1),
        ClusterSpec::mt(6, 8, 2),
        ClusterSpec::mt(6, 8, 4),
        ClusterSpec::mt(6, 8, 8),
    ];

    let mut table = Table::new(&[
        "config",
        "total (s)",
        "SYN (s)",
        "CMP (s)",
        "SND (s)",
        "replicas/vertex",
        "messages",
    ]);
    for spec in configs {
        let p = HashPartitioner.partition(&g, spec.num_workers());
        let out = run_on_cyclops(&w, &g, &p, &spec, fraction);
        let phases = out
            .stats
            .iter()
            .fold(cyclops_net::PhaseTimes::default(), |acc, s| {
                acc.merge(&s.phase_times)
            });
        table.row(vec![
            spec.label(),
            report::secs(out.elapsed),
            report::secs(phases.sync),
            report::secs(phases.compute),
            report::secs(phases.send + phases.parse),
            format!("{:.2}", out.replication_factor),
            report::count(out.counters.messages),
        ]);
    }
    table.print();
    println!(
        "  paper: more workers raise replicas+messages; threads keep them constant;\n\
         \x20 the best configuration is 6x1x8/2 (too many receivers contend on the NIC)"
    );
}
