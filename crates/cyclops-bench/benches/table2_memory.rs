//! Table 2 (§6.10): memory behaviour of PageRank on Wiki.
//!
//! The paper reports JVM heap caps and GC counts; our substitution (see
//! DESIGN.md) reports the byte-level quantities that drive them: message
//! churn over the run (wire bytes — what an allocate-per-batch sender, and
//! hence GC, churns through), the bytes the pooled send path *actually*
//! allocates (buffer capacity growth only; the PR 3 zero-allocation story),
//! peak bytes in in-flight message queues, replica-publication storage, and
//! the resident graph state per worker. Two orderings must reproduce: the
//! paper's — Cyclops trades replica memory for far less message churn, and
//! CyclopsMT replaces internal messages with references — and the pool's —
//! allocation is a warm-up constant, a small fraction of churn.

use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads::{self, run_on_cyclops, run_on_hama};
use cyclops_graph::Dataset;
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!(
        "Table 2: memory behaviour, PageRank on Wiki (scale {fraction})"
    ));
    let g = workloads::gen_graph(Dataset::Wiki, fraction);
    let w = workloads::paper_workloads()[3];
    let msg_size = std::mem::size_of::<f64>();

    let mut table = Table::new(&[
        "config",
        "msg churn bytes",
        "pool alloc bytes",
        "peak queued msgs",
        "replica bytes",
        "graph bytes/worker",
        "messages",
    ]);

    // Hama with 48 workers.
    let flat = workloads::paper_cluster(48);
    let p48 = HashPartitioner.partition(&g, 48);
    let hama = run_on_hama(&w, &g, &p48, &flat, fraction);
    table.row(vec![
        "Hama/48".into(),
        report::count(hama.counters.bytes),
        report::count(hama.counters.message_bytes_allocated as usize),
        report::count(hama.counters.peak_queue_messages as usize),
        "0".into(),
        report::count(g.resident_bytes() / 48),
        report::count(hama.counters.messages),
    ]);

    // Cyclops with 48 workers.
    let cy = run_on_cyclops(&w, &g, &p48, &flat, fraction);
    let cy_replicas = cy.ingress.map(|i| i.total_replicas).unwrap_or(0);
    table.row(vec![
        "Cyclops/48".into(),
        report::count(cy.counters.bytes),
        report::count(cy.counters.message_bytes_allocated as usize),
        report::count(cy.counters.peak_queue_messages as usize),
        report::count(cy_replicas * msg_size),
        report::count(g.resident_bytes() / 48),
        report::count(cy.counters.messages),
    ]);

    // CyclopsMT 6x8.
    let mt_cluster = workloads::paper_cluster_mt(48);
    let p6 = HashPartitioner.partition(&g, mt_cluster.num_workers());
    let mt = run_on_cyclops(&w, &g, &p6, &mt_cluster, fraction);
    let mt_replicas = mt.ingress.map(|i| i.total_replicas).unwrap_or(0);
    table.row(vec![
        "CyclopsMT/6x8".into(),
        report::count(mt.counters.bytes),
        report::count(mt.counters.message_bytes_allocated as usize),
        report::count(mt.counters.peak_queue_messages as usize),
        report::count(mt_replicas * msg_size),
        report::count(g.resident_bytes() / 6),
        report::count(mt.counters.messages),
    ]);

    table.print();
    println!(
        "  paper analogue: Cyclops allocates more for replicas but churns far fewer\n\
         \x20 message bytes (fewer GCs); CyclopsMT shares replicas across threads\n\
         \x20 and uses the least message memory per worker. The pooled send path\n\
         \x20 reduces actual allocation to the per-lane warm-up (churn bytes are\n\
         \x20 what an allocate-per-batch sender, i.e. a GC'd runtime, would churn)."
    );
    assert!(
        cy.counters.bytes < hama.counters.bytes,
        "Cyclops must churn fewer message bytes than Hama"
    );
    assert!(
        mt.counters.bytes <= cy.counters.bytes,
        "CyclopsMT must churn no more message bytes than Cyclops"
    );
    // The PR 3 allocation drop: pooled send buffers allocate a warm-up
    // fraction of the churn, not the churn itself.
    for (name, o) in [("Hama", &hama), ("Cyclops", &cy), ("CyclopsMT", &mt)] {
        assert!(
            o.counters.message_bytes_allocated <= o.counters.bytes as u64,
            "{name}: pooled allocation must not exceed wire churn"
        );
    }
    assert!(
        cy.counters.message_bytes_allocated * 4 <= cy.counters.bytes as u64,
        "Cyclops/48: pool must cut steady-state allocation well below churn"
    );
}
