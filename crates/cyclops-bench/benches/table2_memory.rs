//! Table 2 (§6.10): memory behaviour of PageRank on Wiki.
//!
//! The paper reports JVM heap caps and GC counts; our substitution (see
//! DESIGN.md) reports the byte-level quantities that drive them: bytes
//! allocated for messages over the run (what GC churns through), peak bytes
//! in in-flight message queues, replica-publication storage, and the
//! resident graph state per worker. The paper's ordering — Cyclops trades
//! replica memory for far less message churn; CyclopsMT shares replicas
//! among threads and replaces internal messages with references — must
//! reproduce.

use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads::{self, run_on_cyclops, run_on_hama};
use cyclops_graph::Dataset;
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!(
        "Table 2: memory behaviour, PageRank on Wiki (scale {fraction})"
    ));
    let g = workloads::gen_graph(Dataset::Wiki, fraction);
    let w = workloads::paper_workloads()[3];
    let msg_size = std::mem::size_of::<f64>();

    let mut table = Table::new(&[
        "config",
        "msg bytes allocated",
        "peak queued msgs",
        "replica bytes",
        "graph bytes/worker",
        "messages",
    ]);

    // Hama with 48 workers.
    let flat = workloads::paper_cluster(48);
    let p48 = HashPartitioner.partition(&g, 48);
    let hama = run_on_hama(&w, &g, &p48, &flat, fraction);
    table.row(vec![
        "Hama/48".into(),
        report::count(hama.counters.message_bytes_allocated as usize),
        report::count(hama.counters.peak_queue_messages as usize),
        "0".into(),
        report::count(g.resident_bytes() / 48),
        report::count(hama.counters.messages),
    ]);

    // Cyclops with 48 workers.
    let cy = run_on_cyclops(&w, &g, &p48, &flat, fraction);
    let cy_replicas = cy.ingress.map(|i| i.total_replicas).unwrap_or(0);
    table.row(vec![
        "Cyclops/48".into(),
        report::count(cy.counters.message_bytes_allocated as usize),
        report::count(cy.counters.peak_queue_messages as usize),
        report::count(cy_replicas * msg_size),
        report::count(g.resident_bytes() / 48),
        report::count(cy.counters.messages),
    ]);

    // CyclopsMT 6x8.
    let mt_cluster = workloads::paper_cluster_mt(48);
    let p6 = HashPartitioner.partition(&g, mt_cluster.num_workers());
    let mt = run_on_cyclops(&w, &g, &p6, &mt_cluster, fraction);
    let mt_replicas = mt.ingress.map(|i| i.total_replicas).unwrap_or(0);
    table.row(vec![
        "CyclopsMT/6x8".into(),
        report::count(mt.counters.message_bytes_allocated as usize),
        report::count(mt.counters.peak_queue_messages as usize),
        report::count(mt_replicas * msg_size),
        report::count(g.resident_bytes() / 6),
        report::count(mt.counters.messages),
    ]);

    table.print();
    println!(
        "  paper analogue: Cyclops allocates more for replicas but churns far fewer\n\
         \x20 message bytes (fewer GCs); CyclopsMT shares replicas across threads\n\
         \x20 and uses the least message memory per worker."
    );
    assert!(
        cy.counters.message_bytes_allocated < hama.counters.message_bytes_allocated,
        "Cyclops must churn fewer message bytes than Hama"
    );
    assert!(
        mt.counters.message_bytes_allocated <= cy.counters.message_bytes_allocated,
        "CyclopsMT must churn no more message bytes than Cyclops"
    );
}
