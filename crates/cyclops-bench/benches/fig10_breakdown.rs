//! Figure 10 (§6.4): where the speedup comes from.
//!
//! 1. execution-time breakdown (SYN / PRS / CMP / SND) for Hama, Cyclops
//!    and CyclopsMT on every workload with 48 workers,
//! 2. number of active vertices per superstep (PageRank on GWeb),
//! 3. number of messages per superstep (PageRank on GWeb).

use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads::{self, run_on_cyclops, run_on_hama, Outcome};
use cyclops_graph::Dataset;
use cyclops_net::PhaseTimes;
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

fn phase_row(label: String, engine: &str, t: &PhaseTimes, hama_total: f64) -> Vec<String> {
    let ms = |d: std::time::Duration| format!("{:.1}", d.as_secs_f64() * 1e3);
    vec![
        label,
        engine.to_string(),
        ms(t.sync),
        ms(t.parse),
        ms(t.compute),
        ms(t.send),
        format!(
            "{:.0}%",
            100.0 * t.total().as_secs_f64() / hama_total.max(1e-12)
        ),
    ]
}

fn total_phases(o: &Outcome) -> PhaseTimes {
    o.stats
        .iter()
        .fold(PhaseTimes::default(), |acc, s| acc.merge(&s.phase_times))
}

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!(
        "Figure 10: performance breakdown (scale {fraction})"
    ));

    // ---- Panel 1: phase breakdown per workload. ----
    report::subheading("Fig 10(1): execution time breakdown, 48 workers (ms, summed over workers)");
    let mut table = Table::new(&[
        "workload",
        "engine",
        "SYN",
        "PRS",
        "CMP",
        "SND",
        "total vs Hama",
    ]);
    for w in workloads::paper_workloads() {
        let g = workloads::gen_graph(w.dataset, fraction);
        let label = format!("{} {}", w.algo, w.dataset);
        let flat = workloads::paper_cluster(48);
        let p48 = HashPartitioner.partition(&g, 48);
        let hama = run_on_hama(&w, &g, &p48, &flat, fraction);
        let hama_total = total_phases(&hama).total().as_secs_f64();
        table.row(phase_row(
            label.clone(),
            "Hama",
            &total_phases(&hama),
            hama_total,
        ));
        let cy = run_on_cyclops(&w, &g, &p48, &flat, fraction);
        table.row(phase_row(
            label.clone(),
            "Cyclops",
            &total_phases(&cy),
            hama_total,
        ));
        let mt_cluster = workloads::paper_cluster_mt(48);
        let p6 = HashPartitioner.partition(&g, mt_cluster.num_workers());
        let mt = run_on_cyclops(&w, &g, &p6, &mt_cluster, fraction);
        table.row(phase_row(
            label,
            "CyclopsMT",
            &total_phases(&mt),
            hama_total,
        ));
    }
    table.print();
    println!(
        "  paper: normalized to Hama; Cyclops removes PRS and shrinks CMP/SND on\n\
         \x20 pull-mode workloads (phase times here are summed across workers)"
    );

    // ---- Panels 2 & 3: per-superstep series, PageRank on GWeb. ----
    let g = workloads::gen_graph(Dataset::GWeb, fraction);
    let w = workloads::paper_workloads()[1];
    let flat = workloads::paper_cluster(48);
    let p = HashPartitioner.partition(&g, 48);
    let hama = run_on_hama(&w, &g, &p, &flat, fraction);
    let cy = run_on_cyclops(&w, &g, &p, &flat, fraction);

    report::subheading("Fig 10(2): active vertices per superstep (PR on GWeb)");
    let mut table = Table::new(&["superstep", "Hama", "Cyclops"]);
    let steps = hama.stats.len().max(cy.stats.len());
    for s in (0..steps).filter(|s| s % 4 == 0 || *s < 8) {
        let h = hama.stats.get(s).map(|x| x.active_vertices).unwrap_or(0);
        let c = cy.stats.get(s).map(|x| x.active_vertices).unwrap_or(0);
        table.row(vec![s.to_string(), report::count(h), report::count(c)]);
    }
    table.print();

    report::subheading("Fig 10(3): messages per superstep (PR on GWeb)");
    let mut table = Table::new(&["superstep", "Hama", "Cyclops"]);
    for s in (0..steps).filter(|s| s % 4 == 0 || *s < 8) {
        let h = hama.stats.get(s).map(|x| x.messages_sent).unwrap_or(0);
        let c = cy.stats.get(s).map(|x| x.messages_sent).unwrap_or(0);
        table.row(vec![s.to_string(), report::count(h), report::count(c)]);
    }
    table.print();
    let h_total: usize = hama.stats.iter().map(|s| s.messages_sent).sum();
    let c_total: usize = cy.stats.iter().map(|s| s.messages_sent).sum();
    println!(
        "  totals: Hama {} vs Cyclops {} messages ({:.1}x fewer)",
        report::count(h_total),
        report::count(c_total),
        h_total as f64 / c_total.max(1) as f64
    );
}
