//! Table 3 (§6.11): message-passing micro-benchmark.
//!
//! Five workers concurrently send `(index, value)` messages that update an
//! array owned by a master worker. Three implementations:
//!
//! * **Hama-style** — one locked global queue on the receiver plus a
//!   separate parse phase that applies messages to the array (the paper's
//!   Hadoop-RPC implementation),
//! * **PowerGraph-style** — the same global-queue + parse method with a
//!   leaner per-message footprint (the paper's Boost-RPC implementation;
//!   our substitution drops the per-batch re-buffering the Hama path does),
//! * **Cyclops-style** — per-sender lanes and lock-free direct array
//!   updates, no parse phase, no protection (valid because senders own
//!   disjoint index ranges — the replica invariant).
//!
//! The paper's result: an order of magnitude between Hama and PowerGraph,
//! and Cyclops slightly beating PowerGraph despite the worse RPC library.
//! Our substitution reproduces the architectural gap (serial enqueue+parse
//! vs parallel lock-free update); the Java-vs-C++ language gap is out of
//! scope (see DESIGN.md).

use cyclops_bench::report::{self, Table};
use cyclops_net::{ClusterSpec, DisjointSlots, InboxMode, Transport};
use std::time::{Duration, Instant};

const SENDERS: usize = 5;
const BATCH: usize = 1024;

/// Hama-style: global queue, extra copy per batch (modeling its
/// serialization layering), then a serial parse phase.
fn run_global_queue(n: usize, heavy: bool) -> (Duration, Duration) {
    // 6 workers: 5 senders on distinct machines + receiver (worker 5).
    let spec = ClusterSpec::flat(6, 1);
    let t: Transport<(u32, f64)> = Transport::new(spec, InboxMode::GlobalQueue);
    let send_start = Instant::now();
    std::thread::scope(|s| {
        for sender in 0..SENDERS {
            let t = &t;
            s.spawn(move || {
                let per = n / SENDERS;
                let base = (sender * per) as u32;
                let mut batch = Vec::with_capacity(BATCH);
                for i in 0..per {
                    batch.push((base + (i % per) as u32, i as f64));
                    if batch.len() == BATCH {
                        let payload = if heavy {
                            // Model Hama's extra buffering: one more copy.
                            batch.clone()
                        } else {
                            std::mem::take(&mut batch)
                        };
                        t.send(sender, 5, payload, 0);
                        batch.clear();
                    }
                }
                if !batch.is_empty() {
                    t.send(sender, 5, batch, 0);
                }
            });
        }
    });
    let send = send_start.elapsed();
    // Parse phase: drain the global queue and apply serially.
    let parse_start = Instant::now();
    let mut array = vec![0.0f64; n];
    for (idx, val) in t.drain(5, 1) {
        array[idx as usize] = val;
    }
    std::hint::black_box(&array);
    (send, parse_start.elapsed())
}

/// Cyclops-style: per-sender lanes, receivers apply directly to disjoint
/// slots without protection; no parse phase exists — applying IS receiving.
fn run_direct_update(n: usize) -> (Duration, Duration) {
    let spec = ClusterSpec::flat(6, 1);
    let t: Transport<(u32, f64)> = Transport::new(spec, InboxMode::Sharded);
    let array = DisjointSlots::new(vec![0.0f64; n]);
    let send_start = Instant::now();
    std::thread::scope(|s| {
        for sender in 0..SENDERS {
            let t = &t;
            s.spawn(move || {
                let per = n / SENDERS;
                let base = (sender * per) as u32;
                let mut batch = Vec::with_capacity(BATCH);
                for i in 0..per {
                    batch.push((base + (i % per) as u32, i as f64));
                    if batch.len() == BATCH {
                        t.send(sender, 5, std::mem::take(&mut batch), 0);
                    }
                }
                if !batch.is_empty() {
                    t.send(sender, 5, batch, 0);
                }
            });
        }
    });
    let send = send_start.elapsed();
    let apply_start = Instant::now();
    // Receivers: one per sender lane, updating disjoint ranges lock-free.
    std::thread::scope(|s| {
        for r in 0..SENDERS {
            let t = &t;
            let array = &array;
            s.spawn(move || {
                for (_, batch) in t.drain_lanes_partitioned(5, 1, r, SENDERS) {
                    for (idx, val) in batch {
                        // SAFETY: sender index ranges are disjoint.
                        unsafe { array.write(idx as usize, val) };
                    }
                }
            });
        }
    });
    std::hint::black_box(array.read(0));
    (send, apply_start.elapsed())
}

fn main() {
    report::heading("Table 3: message-passing micro-benchmark (5 senders -> 1 array)");
    let sizes: Vec<usize> = match std::env::var("CYCLOPS_FULL") {
        Ok(_) => vec![5_000_000, 25_000_000, 50_000_000],
        Err(_) => vec![1_000_000, 5_000_000, 10_000_000],
    };
    let mut table = Table::new(&[
        "#messages",
        "Hama SND",
        "Hama PRS",
        "Hama TOT",
        "PG-style SND",
        "PG-style PRS",
        "PG-style TOT",
        "Cyclops SND",
        "Cyclops APL",
        "Cyclops TOT",
    ]);
    for n in sizes {
        let (h_snd, h_prs) = run_global_queue(n, true);
        let (p_snd, p_prs) = run_global_queue(n, false);
        let (c_snd, c_apl) = run_direct_update(n);
        table.row(vec![
            report::count(n),
            report::secs(h_snd),
            report::secs(h_prs),
            report::secs(h_snd + h_prs),
            report::secs(p_snd),
            report::secs(p_prs),
            report::secs(p_snd + p_prs),
            report::secs(c_snd),
            report::secs(c_apl),
            report::secs(c_snd + c_apl),
        ]);
    }
    table.print();
    println!(
        "  paper (5M/25M/50M): Hama 10.1/58.3/187.2s, PowerGraph 0.8/3.6/7.3s,\n\
         \x20 Cyclops 1.0/5.6/9.6s within 30% of PowerGraph despite the worse RPC.\n\
         \x20 Here all three share one codec, so the architectural gap (lock-free\n\
         \x20 direct update vs locked queue + parse) is the measured quantity."
    );
}
