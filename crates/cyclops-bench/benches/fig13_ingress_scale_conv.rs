//! Figure 13 (§6.7–6.9): ingress time, scaling with graph size, and
//! convergence speed.
//!
//! 1. graph ingress breakdown (LD / REP / INIT) per dataset, Hama vs
//!    Cyclops,
//! 2. ALS execution time vs graph size (CyclopsMT),
//! 3. L1-norm distance to the converged PageRank result over execution
//!    time for Hama, Cyclops and CyclopsMT on GWeb.

use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads::{self, run_on_cyclops, run_on_hama};
use cyclops_engine::CyclopsPlan;
use cyclops_graph::{reference, Dataset};
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};
use std::time::Instant;

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!("Figure 13 (scale {fraction})"));

    // ---- Panel 1: ingress time. ----
    report::subheading("Fig 13(1): graph ingress breakdown, 48 workers (ms)");
    let mut table = Table::new(&[
        "dataset",
        "Hama LD",
        "Hama INIT",
        "Hama TOT",
        "Cy LD",
        "Cy REP",
        "Cy INIT",
        "Cy TOT",
    ]);
    let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    for ds in Dataset::all() {
        let g = workloads::gen_graph(ds, fraction);
        let p = HashPartitioner.partition(&g, 48);

        // Hama ingress: distribute vertices (LD) + initialize values (INIT).
        let ld_start = Instant::now();
        let mut locals: Vec<Vec<u32>> = vec![Vec::new(); 48];
        for v in g.vertices() {
            locals[p.part_of(v) as usize].push(v);
        }
        let hama_ld = ld_start.elapsed();
        let init_start = Instant::now();
        let n = g.num_vertices() as f64;
        let mut values = 0.0f64;
        for worker in &locals {
            for _ in worker {
                values += 1.0 / n; // per-vertex initialization work
            }
        }
        std::hint::black_box(values);
        let hama_init = init_start.elapsed();

        // Cyclops ingress: LD + REP from the plan; INIT measured over the
        // same per-vertex initialization plus replica seeding.
        let plan = CyclopsPlan::build(&g, &p);
        let init_start = Instant::now();
        let mut seeded = 0usize;
        for wp in &plan.workers {
            seeded += wp.num_masters() + wp.num_replicas();
        }
        std::hint::black_box(seeded);
        let cy_init = init_start.elapsed() + hama_init;

        table.row(vec![
            ds.to_string(),
            ms(hama_ld),
            ms(hama_init),
            ms(hama_ld + hama_init),
            ms(plan.ingress.load),
            ms(plan.ingress.replicate),
            ms(cy_init),
            ms(plan.ingress.load + plan.ingress.replicate + cy_init),
        ]);
    }
    table.print();
    println!("  paper: Cyclops' extra cost is the replication phase — a one-time cost");

    // ---- Panel 2: ALS scaling with graph size. ----
    report::subheading("Fig 13(2): ALS execution time vs graph size (CyclopsMT)");
    let mut table = Table::new(&["edges", "time (s)"]);
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let f = fraction * mult;
        let g = workloads::gen_graph(Dataset::SynGl, f);
        let w = workloads::paper_workloads()[4];
        let mt = workloads::paper_cluster_mt(48);
        let p = HashPartitioner.partition(&g, mt.num_workers());
        let out = run_on_cyclops(&w, &g, &p, &mt, f);
        table.row(vec![
            report::count(g.num_edges()),
            report::secs(out.elapsed),
        ]);
    }
    table.print();
    println!("  paper: 9.6s at 0.34M edges to 207.7s at 20.2M — roughly linear");

    // ---- Panel 3: convergence speed (L1-norm over time). ----
    report::subheading("Fig 13(3): L1-norm distance to final PageRank vs time (GWeb)");
    let g = workloads::gen_graph(Dataset::GWeb, fraction);
    let (final_ranks, _) = reference::pagerank(&g, 1e-14, 500);
    let mut table = Table::new(&["supersteps", "engine", "time (s)", "L1-norm"]);
    for k in [2usize, 5, 10, 20, 40] {
        // Truncated runs: rerun each engine capped at k supersteps and
        // measure distance of the partial result to the converged ranks.
        let flat = workloads::paper_cluster(48);
        let p48 = HashPartitioner.partition(&g, 48);
        let hama = cyclops_algos::pagerank::run_bsp_pagerank(&g, &p48, &flat, 0.0, k + 1);
        table.row(vec![
            k.to_string(),
            "Hama".into(),
            report::secs(hama.elapsed),
            format!("{:.2e}", reference::l1_distance(&hama.values, &final_ranks)),
        ]);
        let cy = cyclops_algos::pagerank::run_cyclops_pagerank(&g, &p48, &flat, 0.0, k);
        table.row(vec![
            k.to_string(),
            "Cyclops".into(),
            report::secs(cy.elapsed),
            format!("{:.2e}", reference::l1_distance(&cy.values, &final_ranks)),
        ]);
        let mt_cluster = workloads::paper_cluster_mt(48);
        let p6 = HashPartitioner.partition(&g, mt_cluster.num_workers());
        let mt = cyclops_algos::pagerank::run_cyclops_pagerank(&g, &p6, &mt_cluster, 0.0, k);
        table.row(vec![
            k.to_string(),
            "CyclopsMT".into(),
            report::secs(mt.elapsed),
            format!("{:.2e}", reference::l1_distance(&mt.values, &final_ranks)),
        ]);
    }
    table.print();
    let _ = run_on_hama;
    let _ = run_on_cyclops;
    println!("  paper: Cyclops and CyclopsMT reach any given L1-norm sooner than Hama");
}
