//! Figure 11 (§6.6): impact of the graph partitioning algorithm.
//!
//! 1. replication factor on Wiki vs number of partitions (hash vs Metis),
//! 2. replication factor per dataset at 48 partitions,
//! 3. speedup under the Metis partition, 48 workers (normalized to Hama
//!    under the same partition).

use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads::{self, run_on_cyclops, run_on_hama};
use cyclops_graph::Dataset;
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner, MultilevelPartitioner};

fn main() {
    let fraction = workloads::scale();
    let metis = MultilevelPartitioner::default();
    report::heading(&format!(
        "Figure 11: graph partitioning impact (scale {fraction})"
    ));

    // ---- Panel 1: replication factor vs #partitions on Wiki. ----
    report::subheading("Fig 11(1): replication factor on Wiki vs #partitions");
    let wiki = workloads::gen_graph(Dataset::Wiki, fraction);
    let mut table = Table::new(&["partitions", "hash", "metis"]);
    for k in [6usize, 12, 24, 48] {
        let hash_rf = HashPartitioner
            .partition(&wiki, k)
            .replication_factor(&wiki);
        let metis_rf = metis.partition(&wiki, k).replication_factor(&wiki);
        table.row(vec![
            k.to_string(),
            format!("{hash_rf:.2}"),
            format!("{metis_rf:.2}"),
        ]);
    }
    table.print();
    println!(
        "  paper: hash approaches the average degree; Metis stays several times\n\
         \x20 lower. (R-MAT stand-ins have less community locality than real web\n\
         \x20 graphs, so our multilevel gap narrows at high partition counts.)"
    );

    // ---- Panel 2: replication factor per dataset at 48 partitions. ----
    report::subheading("Fig 11(2): replication factor per dataset, 48 partitions");
    let mut table = Table::new(&["dataset", "hash", "metis"]);
    for ds in Dataset::all() {
        let g = workloads::gen_graph(ds, fraction);
        let hash_rf = HashPartitioner.partition(&g, 48).replication_factor(&g);
        let metis_rf = metis.partition(&g, 48).replication_factor(&g);
        table.row(vec![
            ds.to_string(),
            format!("{hash_rf:.2}"),
            format!("{metis_rf:.2}"),
        ]);
    }
    table.print();
    println!("  paper: RoadCA is near-planar -> tiny replication factor (0.07 / 0.01)");

    // ---- Panel 3: performance with the Metis partition. ----
    report::subheading("Fig 11(3): speedup with Metis partition, 48 workers");
    let mut table = Table::new(&[
        "workload",
        "Hama (s)",
        "Cyclops (s)",
        "CyclopsMT (s)",
        "Cyclops speedup",
        "CyclopsMT speedup",
    ]);
    for w in workloads::paper_workloads() {
        let g = workloads::gen_graph(w.dataset, fraction);
        let flat = workloads::paper_cluster(48);
        let p48 = metis.partition(&g, 48);
        let hama = run_on_hama(&w, &g, &p48, &flat, fraction);
        let cy = run_on_cyclops(&w, &g, &p48, &flat, fraction);
        let mt_cluster = workloads::paper_cluster_mt(48);
        let p6 = metis.partition(&g, mt_cluster.num_workers());
        let mt = run_on_cyclops(&w, &g, &p6, &mt_cluster, fraction);
        table.row(vec![
            format!("{} {}", w.algo, w.dataset),
            report::secs(hama.elapsed),
            report::secs(cy.elapsed),
            report::secs(mt.elapsed),
            report::speedup(hama.elapsed.as_secs_f64() / cy.elapsed.as_secs_f64()),
            report::speedup(hama.elapsed.as_secs_f64() / mt.elapsed.as_secs_f64()),
        ]);
    }
    table.print();
    println!("  paper: Cyclops gains far more from Metis than Hama (5.95x-23.04x over Hama)");
}
