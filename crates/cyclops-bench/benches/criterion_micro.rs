//! Criterion micro-benchmarks of the substrate kernels the experiments rest
//! on: codec throughput, the adaptive replica-update wire format vs the
//! legacy framing across batch densities, inbox enqueue under the two
//! disciplines, barrier latency, CSR neighbor iteration, the ALS Cholesky
//! solve, the metrics hot path (histogram record vs the disabled Option
//! check), hot-vertex top-K capture (Space-Saving record vs the disabled
//! Option check), the flight recorder's span hot path (ring write vs the
//! disabled Option check), the communication matrix's per-flush accounting
//! (per-destination cells vs the aggregate counters), the compute
//! scheduler's frontier-dispatch strategies on a skewed R-MAT frontier,
//! the hybrid-replication publish split (direct-message batches alongside
//! replica flushes across boundary coldness levels), hybrid plan
//! construction against the full-replication build it extends, and the
//! tracking allocator's malloc/free overhead disarmed vs armed.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use cyclops_algos::linalg::cholesky_solve;
use cyclops_graph::gen::{rmat, RmatConfig};
use cyclops_net::codec::{decode_batch, encode_batch, encode_batch_into};
use cyclops_net::metrics::{PhaseHists, PhaseTimes};
use cyclops_net::{
    ClusterSpec, DirectMessage, FlatBarrier, HierarchicalBarrier, InboxMode, ReplicaUpdate,
    Transport, WireFormat,
};
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

/// Route every allocation in this bench binary through the tracking
/// allocator so `bench_mem_tracking` prices the real disarmed and armed
/// paths. Disarmed it is a pure pass-through, so the other groups are
/// unaffected; `bench_mem_tracking` arms it and therefore runs last.
#[global_allocator]
static ALLOC: cyclops_obs::MemAlloc = cyclops_obs::MemAlloc;

fn bench_codec(c: &mut Criterion) {
    let msgs: Vec<(u32, f64)> = (0..4096).map(|i| (i, i as f64 * 0.5)).collect();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(msgs.len() as u64));
    group.bench_function("encode_batch_4096", |b| {
        b.iter(|| encode_batch(std::hint::black_box(&msgs)))
    });
    let encoded = encode_batch(&msgs);
    group.bench_function("decode_batch_4096", |b| {
        b.iter(|| {
            let mut buf = encoded.clone().freeze();
            let out: Vec<(u32, f64)> = decode_batch(&mut buf);
            std::hint::black_box(out)
        })
    });
    group.finish();
}

/// The adaptive `ReplicaBatch` wire format vs the legacy tuple framing at
/// three batch densities over a 4096-slot replica range. At 1% the adaptive
/// encoder self-selects sparse (delta-varint ids), at 90% dense (presence
/// bitmap + packed payloads); 10% sits near the break-even. Throughput is
/// per update, so the numbers read as ns/vertex; the encoded byte sizes —
/// the half of the story criterion cannot time — are printed alongside.
fn bench_wire_encoding(c: &mut Criterion) {
    const SPAN: u32 = 4096;
    for (label, density) in [("1pct", 0.01), ("10pct", 0.10), ("90pct", 0.90)] {
        let count = (SPAN as f64 * density) as u32;
        // Evenly spread unique ids: strictly increasing because the stride
        // 1/density > 1, deterministic so runs are comparable.
        let mut updates: Vec<ReplicaUpdate<f64>> = (0..count)
            .map(|k| ReplicaUpdate {
                replica: (k as f64 / density) as u32,
                payload: k as f64 * 0.5,
                activate: k % 3 == 0,
            })
            .collect();
        let legacy: Vec<(u32, f64, bool)> = updates
            .iter()
            .map(|u| (u.replica, u.payload, u.activate))
            .collect();

        let mut adaptive_buf = BytesMut::new();
        let stats = ReplicaUpdate::wire_encode_batch_into(&mut adaptive_buf, &mut updates);
        let mut legacy_buf = BytesMut::new();
        encode_batch_into(&mut legacy_buf, &legacy);
        println!(
            "wire_encoding/{label}: {count} updates, adaptive {} B ({}), legacy {} B ({:.1}% saved)",
            adaptive_buf.len(),
            stats.mode.label(),
            legacy_buf.len(),
            100.0 * (1.0 - adaptive_buf.len() as f64 / legacy_buf.len() as f64),
        );

        let mut group = c.benchmark_group(&format!("wire_encoding_{label}"));
        group.throughput(Throughput::Elements(count as u64));
        group.bench_function(&format!("encode_{}", stats.mode.label()), |b| {
            let mut buf = BytesMut::new();
            b.iter(|| {
                let stats = ReplicaUpdate::wire_encode_batch_into(
                    std::hint::black_box(&mut buf),
                    std::hint::black_box(&mut updates),
                );
                std::hint::black_box(stats.mode)
            })
        });
        group.bench_function("encode_legacy", |b| {
            let mut buf = BytesMut::new();
            b.iter(|| {
                std::hint::black_box(encode_batch_into(
                    std::hint::black_box(&mut buf),
                    std::hint::black_box(&legacy),
                ))
            })
        });
        group.bench_function(&format!("decode_{}", stats.mode.label()), |b| {
            b.iter(|| {
                let mut buf = adaptive_buf.clone().freeze();
                let out: Vec<ReplicaUpdate<f64>> =
                    ReplicaUpdate::wire_try_decode_batch(&mut buf).unwrap();
                std::hint::black_box(out)
            })
        });
        group.finish();
    }
}

fn bench_inbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("inbox_enqueue_1k_batches");
    for (name, mode) in [
        ("global_queue", InboxMode::GlobalQueue),
        ("sharded", InboxMode::Sharded),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || Transport::<(u32, f64)>::new(ClusterSpec::flat(4, 1), mode),
                |t| {
                    std::thread::scope(|s| {
                        for sender in 0..4usize {
                            let t = &t;
                            s.spawn(move || {
                                for i in 0..64u32 {
                                    let batch: Vec<(u32, f64)> =
                                        (0..16).map(|j| (i * 16 + j, 1.0)).collect();
                                    t.send(sender, 3, batch, 0);
                                }
                            });
                        }
                    });
                    std::hint::black_box(t.pending(3));
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_8_threads_100_rounds");
    group.bench_function("flat", |b| {
        b.iter(|| {
            let barrier = FlatBarrier::new(8);
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..100 {
                            barrier.wait();
                        }
                    });
                }
            });
        })
    });
    group.bench_function("hierarchical_2x4", |b| {
        b.iter(|| {
            let barrier = HierarchicalBarrier::new(2, 4);
            std::thread::scope(|s| {
                for m in 0..2 {
                    for t in 0..4 {
                        let barrier = &barrier;
                        s.spawn(move || {
                            for _ in 0..100 {
                                barrier.wait(m, t);
                            }
                        });
                    }
                }
            });
        })
    });
    group.finish();
}

fn bench_csr(c: &mut Criterion) {
    let g = rmat(
        RmatConfig {
            scale: 12,
            edges: 40_000,
            ..Default::default()
        },
        3,
    );
    let mut group = c.benchmark_group("csr");
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.bench_function("sum_in_neighbors", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.vertices() {
                for &u in g.in_neighbors(v) {
                    acc = acc.wrapping_add(u as u64);
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let d = 8;
    // SPD system resembling an ALS normal-equation solve.
    let mut a = vec![0.0f64; d * d];
    for i in 0..d {
        for j in 0..d {
            a[i * d + j] = if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i + j) as f64)
            };
        }
    }
    let b0: Vec<f64> = (0..d).map(|i| i as f64).collect();
    c.bench_function("cholesky_solve_8x8", |b| {
        b.iter(|| {
            let mut a2 = a.clone();
            let mut b2 = b0.clone();
            assert!(cholesky_solve(&mut a2, &mut b2, d));
            std::hint::black_box(b2)
        })
    });
}

/// The per-superstep instrumentation cost at both ends of the dial: the
/// disabled path (no registry installed — the engine's `Option` check and
/// nothing else) and the enabled path (four log-linear histogram records).
/// The acceptance bar is that the disabled path costs nothing measurable.
fn bench_metrics(c: &mut Criterion) {
    // Resolve BEFORE installing the global registry, exactly as an engine
    // run without `--prom` would: the handle is `None` for the whole run.
    let disabled = PhaseHists::resolve("bench-disabled");
    assert!(disabled.is_none(), "no registry installed yet");
    let times = PhaseTimes::default();

    let mut group = c.benchmark_group("metrics_per_superstep");
    group.bench_function("disabled_option_check", |b| {
        b.iter(|| {
            if let Some(ph) = std::hint::black_box(&disabled) {
                ph.record(std::hint::black_box(&times));
            }
        })
    });

    cyclops_obs::install_global();
    let enabled = PhaseHists::resolve("bench-enabled");
    assert!(enabled.is_some(), "registry installed");
    group.bench_function("enabled_4_hist_records", |b| {
        b.iter(|| {
            if let Some(ph) = std::hint::black_box(&enabled) {
                ph.record(std::hint::black_box(&times));
            }
        })
    });

    let hist = cyclops_obs::install_global().histogram("bench_record_ns", &[]);
    group.bench_function("single_hist_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1_337);
            hist.record(std::hint::black_box(v));
        })
    });
    group.finish();
}

/// The per-vertex cost of hot-vertex capture at both ends of the dial: the
/// disabled path (`hot_k == 0` — one resolved-`Option` check per vertex,
/// exactly what every untraced run pays) and the enabled path (a
/// Space-Saving `record` against a k=16 sketch). The acceptance bar is
/// that the disabled check is free.
fn bench_hot_vertex(c: &mut Criterion) {
    use cyclops_obs::SpaceSaving;
    let mut group = c.benchmark_group("hot_vertex_per_vertex");

    // Disabled: the engine holds `None` and pays one Option check.
    let mut disabled: Option<SpaceSaving> = None;
    group.bench_function("disabled_option_check", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = v.wrapping_add(7);
            if let Some(hs) = std::hint::black_box(&mut disabled) {
                hs.record(v, 1);
            }
        })
    });

    // Enabled: k=16 sketch over a skewed stream (most records miss the
    // sketch and hit the evict-min path — the worst case).
    let mut enabled = Some(SpaceSaving::new(16));
    group.bench_function("enabled_k16_record", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = v.wrapping_add(7);
            if let Some(hs) = std::hint::black_box(&mut enabled) {
                hs.record(v & 0x3ff, 1 + (v & 7) as u64);
            }
        })
    });
    group.finish();
}

/// The flight recorder's per-span cost at both ends of the dial: the
/// disabled path (no recorder installed — the engine resolved `None` once
/// per thread loop and pays one `Option` check at each span site, skipping
/// the clock read) and the enabled path (a `now_ns` clock read plus one
/// ring-buffer write). The acceptance bar pins the tentpole's overhead
/// claim: the disabled check costs nothing measurable.
fn bench_span_event(c: &mut Criterion) {
    use cyclops_obs::{FlightRecorder, SpanKind, SpanRing, DEFAULT_FLIGHT_CAPACITY};
    use std::sync::Arc;

    assert!(
        cyclops_obs::flight().is_none(),
        "benches must not install the global flight recorder"
    );
    let mut group = c.benchmark_group("span_event_disabled");

    // Exactly the engine's span-site shape: capture an optional start
    // timestamp, do the (elided) work, record when the ring resolved.
    let disabled: Option<Arc<SpanRing>> = None;
    group.bench_function("disabled_option_check", |b| {
        b.iter(|| {
            let start = std::hint::black_box(&disabled).as_ref().map(|r| r.now_ns());
            if let (Some(r), Some(s)) = (std::hint::black_box(&disabled), start) {
                r.record(SpanKind::Compute, s, 1, 0, 0);
            }
        })
    });

    // Enabled: a local (non-global) recorder so the rest of the bench
    // binary still sees the disabled path.
    let fr = FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY);
    let enabled: Option<Arc<SpanRing>> = Some(fr.ring(0, 0));
    group.bench_function("enabled_clock_and_ring_write", |b| {
        b.iter(|| {
            let start = std::hint::black_box(&enabled).as_ref().map(|r| r.now_ns());
            if let (Some(r), Some(s)) = (std::hint::black_box(&enabled), start) {
                r.record(SpanKind::Compute, s, 1, 0, 0);
            }
        })
    });
    group.finish();
}

/// The communication matrix's per-flush accounting cost: the legacy
/// aggregate counters (`add_sent`) vs the per-destination cells that feed
/// the per-record matrix (`add_sent_to` + the wire-mode batch count). Both
/// are a handful of relaxed atomic adds; the bar is that attributing by
/// destination costs no more than a few nanoseconds over the aggregate.
fn bench_comm_matrix(c: &mut Criterion) {
    use cyclops_net::trace::TraceSink;
    let cluster = ClusterSpec::flat(2, 2);
    let sink = TraceSink::new("bench", &cluster);
    let tr = sink.worker(0);

    let mut group = c.benchmark_group("comm_matrix_per_flush");
    group.bench_function("add_sent_aggregate_only", |b| {
        let mut dst = 0usize;
        b.iter(|| {
            dst = (dst + 1) & 3;
            tr.add_sent(std::hint::black_box(16), std::hint::black_box(256));
        })
    });
    group.bench_function("add_sent_to_pair_cells", |b| {
        let mut dst = 0usize;
        b.iter(|| {
            dst = (dst + 1) & 3;
            tr.add_sent_to(
                std::hint::black_box(dst),
                std::hint::black_box(16),
                std::hint::black_box(256),
            );
            tr.add_wire_batches_to(std::hint::black_box(dst), 1, 0);
        })
    });
    group.finish();
}

/// The PR 3 scheduling dial, isolated from the engine: dispatch a skewed
/// R-MAT frontier to T compute threads three ways and measure the aggregate
/// CPU cost of the dispatch + per-vertex work.
///
/// * `static_full_scan` — the pre-PR engine loop: every thread walks the
///   *entire* frontier and skips entries outside its vertex range, an
///   O(frontier × threads) scan.
/// * `static_shards` — owner-sharded sub-frontiers: each thread walks only
///   its contiguous slice, O(frontier) total but chunk mass as skewed as
///   the degree distribution.
/// * `dynamic_mass_chunks` — equal out-degree-mass chunks claimed off an
///   atomic cursor, O(frontier) total *and* balanced mass per claim.
///
/// Threads are simulated sequentially (single accumulated cost), so the
/// numbers compare total work, not parallel wall-clock: the full-scan
/// variant loses by the scan factor here, and on real multicore the
/// static-shards variant additionally loses wall-clock to mass skew —
/// visible in the `cyclops_compute_imbalance` histogram, not this bench.
fn bench_scheduling(c: &mut Criterion) {
    const THREADS: usize = 4;
    let g = rmat(
        RmatConfig {
            scale: 13,
            edges: 60_000,
            ..Default::default()
        },
        7,
    );
    let n = g.num_vertices();
    // Full frontier, in vertex order — what the sorted-flat drain produces.
    let frontier: Vec<u32> = (0..n as u32).collect();
    // Work mass per frontier entry = in-degree + 1, mirroring the engine's
    // degree-weighted chunk cuts.
    let mass: Vec<u64> = frontier
        .iter()
        .map(|&v| g.in_neighbors(v).len() as u64 + 1)
        .collect();

    // Per-vertex compute: fold the in-neighborhood, the same memory access
    // pattern as a PageRank gather.
    let work = |v: u32| -> u64 {
        let mut acc = v as u64;
        for &u in g.in_neighbors(v) {
            acc = acc.wrapping_add(u as u64);
        }
        acc
    };

    // Equal-mass chunk boundaries by cross-multiplied prefix sums —
    // mirrors cyclops-engine's build_mass_chunks.
    let mass_chunk_ends = |chunks: usize| -> Vec<usize> {
        let total: u64 = mass.iter().sum();
        let mut ends = Vec::with_capacity(chunks);
        let mut cum = 0u64;
        let mut next = 1u64;
        for (i, m) in mass.iter().enumerate() {
            cum += m;
            while next <= chunks as u64 && cum * chunks as u64 >= next * total {
                ends.push(i + 1);
                next += 1;
            }
        }
        while ends.len() < chunks {
            ends.push(frontier.len());
        }
        ends
    };

    let mut group = c.benchmark_group("scheduling_skewed_frontier");
    group.throughput(Throughput::Elements(frontier.len() as u64));

    group.bench_function("static_full_scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in 0..THREADS {
                // Ceil-based shard bounds on the *vertex id* space, as the
                // old engine sharded masters.
                let lo = (t * n).div_ceil(THREADS) as u32;
                let hi = ((t + 1) * n).div_ceil(THREADS) as u32;
                for &v in &frontier {
                    if v < lo || v >= hi {
                        continue; // the scan-and-skip tax
                    }
                    acc = acc.wrapping_add(work(v));
                }
            }
            std::hint::black_box(acc)
        })
    });

    group.bench_function("static_shards", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in 0..THREADS {
                let lo = (t * frontier.len()).div_ceil(THREADS);
                let hi = ((t + 1) * frontier.len()).div_ceil(THREADS);
                for &v in &frontier[lo..hi] {
                    acc = acc.wrapping_add(work(v));
                }
            }
            std::hint::black_box(acc)
        })
    });

    let ends = mass_chunk_ends(THREADS * 4);
    group.bench_function("dynamic_mass_chunks", |b| {
        b.iter(|| {
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let mut acc = 0u64;
            for _t in 0..THREADS {
                loop {
                    let c = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if c >= ends.len() {
                        break;
                    }
                    let lo = if c == 0 { 0 } else { ends[c - 1] };
                    for &v in &frontier[lo..ends[c]] {
                        acc = acc.wrapping_add(work(v));
                    }
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

/// The hybrid-replication publish split: a 4096-vertex boundary where a
/// coldness fraction is messaged directly (`DirectBatch`) and the rest is
/// replicated (`ReplicaBatch`), versus the threshold-0 baseline that
/// replicates everything. Both framings share the adaptive sparse/dense
/// encoder, so this isolates the cost of splitting one flush into two
/// batches — the per-superstep price of hybrid mode on the publish path.
fn bench_direct_vs_replica_publish(c: &mut Criterion) {
    const SPAN: u32 = 4096;
    for (label, coldness) in [("1pct", 0.01), ("10pct", 0.10), ("90pct", 0.90)] {
        let cold = (SPAN as f64 * coldness) as u32;
        // Cold (messaged) vertices spread evenly through the span; the rest
        // are hot (replicated). Deterministic so runs are comparable.
        let stride = (SPAN / cold.max(1)).max(1);
        let is_cold = |v: u32| v.is_multiple_of(stride) && v / stride < cold;
        let full: Vec<ReplicaUpdate<f64>> = (0..SPAN)
            .map(|v| ReplicaUpdate {
                replica: v,
                payload: v as f64 * 0.5,
                activate: v % 3 == 0,
            })
            .collect();
        let hot: Vec<ReplicaUpdate<f64>> = full
            .iter()
            .filter(|u| !is_cold(u.replica))
            .cloned()
            .collect();
        let direct: Vec<DirectMessage<f64>> = (0..SPAN)
            .filter(|&v| is_cold(v))
            .enumerate()
            .map(|(slot, v)| DirectMessage::new(slot as u32, v as f64 * 0.5, true))
            .collect();

        let mut rb = BytesMut::new();
        ReplicaUpdate::wire_encode_batch_into(&mut rb, &mut full.clone());
        let mut hb = BytesMut::new();
        ReplicaUpdate::wire_encode_batch_into(&mut hb, &mut hot.clone());
        let mut db = BytesMut::new();
        DirectMessage::wire_encode_batch_into(&mut db, &mut direct.clone());
        println!(
            "direct_vs_replica_publish/{label}: full-replication {} B, hybrid {} B \
             ({} replica + {} direct, {:+.1}%)",
            rb.len(),
            hb.len() + db.len(),
            hb.len(),
            db.len(),
            100.0 * ((hb.len() + db.len()) as f64 / rb.len() as f64 - 1.0),
        );

        let mut group = c.benchmark_group(&format!("direct_vs_replica_publish_{label}"));
        group.throughput(Throughput::Elements(SPAN as u64));
        group.bench_function("replica_full_4096", |b| {
            let mut buf = BytesMut::new();
            b.iter_batched(
                || full.clone(),
                |mut updates| {
                    buf.clear();
                    ReplicaUpdate::wire_encode_batch_into(&mut buf, &mut updates);
                    std::hint::black_box(buf.len())
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function("hybrid_split_4096", |b| {
            let mut rbuf = BytesMut::new();
            let mut dbuf = BytesMut::new();
            b.iter_batched(
                || (hot.clone(), direct.clone()),
                |(mut hot, mut direct)| {
                    rbuf.clear();
                    dbuf.clear();
                    ReplicaUpdate::wire_encode_batch_into(&mut rbuf, &mut hot);
                    DirectMessage::wire_encode_batch_into(&mut dbuf, &mut direct);
                    std::hint::black_box(rbuf.len() + dbuf.len())
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}

/// Ingress cost of hybrid plan construction: rewiring cold boundary
/// vertices to direct-message tables happens once at plan build, and this
/// pins its price against the threshold-0 build it replaces.
fn bench_plan_build_hybrid(c: &mut Criterion) {
    let g = rmat(
        RmatConfig {
            scale: 13,
            edges: 60_000,
            ..Default::default()
        },
        11,
    );
    let p = HashPartitioner.partition(&g, 6);
    let auto = p.auto_replicate_threshold(&g);
    let mut group = c.benchmark_group("plan_build_hybrid");
    group.bench_function("threshold_0_full_replication", |b| {
        b.iter(|| {
            std::hint::black_box(cyclops_engine::CyclopsPlan::build_parallel_with_threshold(
                &g, &p, 0,
            ))
        })
    });
    group.bench_function(&format!("threshold_auto_{auto}"), |b| {
        b.iter(|| {
            std::hint::black_box(cyclops_engine::CyclopsPlan::build_parallel_with_threshold(
                &g, &p, auto,
            ))
        })
    });
    group.finish();
}

/// The tracking allocator's bargain: a disarmed `--mem` machinery must
/// cost a single relaxed bool load per malloc/free, and the armed path's
/// price (scope lookup, sharded side table, peak maintenance) is what a
/// `--mem` run pays. Measured on the same allocate-and-free loop before
/// and after the one-way `arm()`, plus the `MemScope::enter` guard itself.
/// This group MUST stay last in `criterion_group!`: arming is process-
/// global and irreversible, and every other group's numbers assume the
/// disarmed pass-through.
fn bench_mem_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_tracking");
    assert!(
        !cyclops_obs::mem::armed(),
        "mem_tracking must run before anything arms the allocator"
    );
    group.bench_function("alloc_free_256B_disarmed", |b| {
        b.iter(|| std::hint::black_box(Vec::<u8>::with_capacity(256)))
    });
    group.bench_function("alloc_free_4KiB_disarmed", |b| {
        b.iter(|| std::hint::black_box(Vec::<u8>::with_capacity(4096)))
    });
    cyclops_obs::mem::arm();
    group.bench_function("alloc_free_256B_armed", |b| {
        b.iter(|| std::hint::black_box(Vec::<u8>::with_capacity(256)))
    });
    group.bench_function("alloc_free_4KiB_armed", |b| {
        b.iter(|| std::hint::black_box(Vec::<u8>::with_capacity(4096)))
    });
    group.bench_function("alloc_free_256B_armed_scoped", |b| {
        let _scope = cyclops_obs::mem::MemScope::enter(cyclops_obs::Component::SendPool);
        b.iter(|| std::hint::black_box(Vec::<u8>::with_capacity(256)))
    });
    group.bench_function("scope_enter_exit_armed", |b| {
        b.iter(|| {
            std::hint::black_box(cyclops_obs::mem::MemScope::enter(
                cyclops_obs::Component::Inbox,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_wire_encoding,
    bench_inbox,
    bench_barrier,
    bench_csr,
    bench_cholesky,
    bench_metrics,
    bench_hot_vertex,
    bench_span_event,
    bench_comm_matrix,
    bench_scheduling,
    bench_direct_vs_replica_publish,
    bench_plan_build_hybrid,
    bench_mem_tracking
);
criterion_main!(benches);
