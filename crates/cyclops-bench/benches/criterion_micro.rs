//! Criterion micro-benchmarks of the substrate kernels the experiments rest
//! on: codec throughput, inbox enqueue under the two disciplines, barrier
//! latency, CSR neighbor iteration, the ALS Cholesky solve, and the
//! metrics hot path (histogram record vs the disabled Option check).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use cyclops_algos::linalg::cholesky_solve;
use cyclops_graph::gen::{rmat, RmatConfig};
use cyclops_net::codec::{decode_batch, encode_batch};
use cyclops_net::metrics::{PhaseHists, PhaseTimes};
use cyclops_net::{ClusterSpec, FlatBarrier, HierarchicalBarrier, InboxMode, Transport};

fn bench_codec(c: &mut Criterion) {
    let msgs: Vec<(u32, f64)> = (0..4096).map(|i| (i, i as f64 * 0.5)).collect();
    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(msgs.len() as u64));
    group.bench_function("encode_batch_4096", |b| {
        b.iter(|| encode_batch(std::hint::black_box(&msgs)))
    });
    let encoded = encode_batch(&msgs);
    group.bench_function("decode_batch_4096", |b| {
        b.iter(|| {
            let mut buf = encoded.clone().freeze();
            let out: Vec<(u32, f64)> = decode_batch(&mut buf);
            std::hint::black_box(out)
        })
    });
    group.finish();
}

fn bench_inbox(c: &mut Criterion) {
    let mut group = c.benchmark_group("inbox_enqueue_1k_batches");
    for (name, mode) in [
        ("global_queue", InboxMode::GlobalQueue),
        ("sharded", InboxMode::Sharded),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || Transport::<(u32, f64)>::new(ClusterSpec::flat(4, 1), mode),
                |t| {
                    std::thread::scope(|s| {
                        for sender in 0..4usize {
                            let t = &t;
                            s.spawn(move || {
                                for i in 0..64u32 {
                                    let batch: Vec<(u32, f64)> =
                                        (0..16).map(|j| (i * 16 + j, 1.0)).collect();
                                    t.send(sender, 3, batch, 0);
                                }
                            });
                        }
                    });
                    std::hint::black_box(t.pending(3));
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_8_threads_100_rounds");
    group.bench_function("flat", |b| {
        b.iter(|| {
            let barrier = FlatBarrier::new(8);
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..100 {
                            barrier.wait();
                        }
                    });
                }
            });
        })
    });
    group.bench_function("hierarchical_2x4", |b| {
        b.iter(|| {
            let barrier = HierarchicalBarrier::new(2, 4);
            std::thread::scope(|s| {
                for m in 0..2 {
                    for t in 0..4 {
                        let barrier = &barrier;
                        s.spawn(move || {
                            for _ in 0..100 {
                                barrier.wait(m, t);
                            }
                        });
                    }
                }
            });
        })
    });
    group.finish();
}

fn bench_csr(c: &mut Criterion) {
    let g = rmat(
        RmatConfig {
            scale: 12,
            edges: 40_000,
            ..Default::default()
        },
        3,
    );
    let mut group = c.benchmark_group("csr");
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.bench_function("sum_in_neighbors", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.vertices() {
                for &u in g.in_neighbors(v) {
                    acc = acc.wrapping_add(u as u64);
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let d = 8;
    // SPD system resembling an ALS normal-equation solve.
    let mut a = vec![0.0f64; d * d];
    for i in 0..d {
        for j in 0..d {
            a[i * d + j] = if i == j {
                4.0
            } else {
                1.0 / (1.0 + (i + j) as f64)
            };
        }
    }
    let b0: Vec<f64> = (0..d).map(|i| i as f64).collect();
    c.bench_function("cholesky_solve_8x8", |b| {
        b.iter(|| {
            let mut a2 = a.clone();
            let mut b2 = b0.clone();
            assert!(cholesky_solve(&mut a2, &mut b2, d));
            std::hint::black_box(b2)
        })
    });
}

/// The per-superstep instrumentation cost at both ends of the dial: the
/// disabled path (no registry installed — the engine's `Option` check and
/// nothing else) and the enabled path (four log-linear histogram records).
/// The acceptance bar is that the disabled path costs nothing measurable.
fn bench_metrics(c: &mut Criterion) {
    // Resolve BEFORE installing the global registry, exactly as an engine
    // run without `--prom` would: the handle is `None` for the whole run.
    let disabled = PhaseHists::resolve("bench-disabled");
    assert!(disabled.is_none(), "no registry installed yet");
    let times = PhaseTimes::default();

    let mut group = c.benchmark_group("metrics_per_superstep");
    group.bench_function("disabled_option_check", |b| {
        b.iter(|| {
            if let Some(ph) = std::hint::black_box(&disabled) {
                ph.record(std::hint::black_box(&times));
            }
        })
    });

    cyclops_obs::install_global();
    let enabled = PhaseHists::resolve("bench-enabled");
    assert!(enabled.is_some(), "registry installed");
    group.bench_function("enabled_4_hist_records", |b| {
        b.iter(|| {
            if let Some(ph) = std::hint::black_box(&enabled) {
                ph.record(std::hint::black_box(&times));
            }
        })
    });

    let hist = cyclops_obs::install_global().histogram("bench_record_ns", &[]);
    group.bench_function("single_hist_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1_337);
            hist.record(std::hint::black_box(v));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_inbox,
    bench_barrier,
    bench_csr,
    bench_cholesky,
    bench_metrics
);
criterion_main!(benches);
