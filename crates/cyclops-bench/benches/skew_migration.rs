//! Skewed-partition dynamic migration panel (beyond the paper's own
//! figures): a pathological edge-cut piles the majority of masters onto
//! worker 0, and the superstep-boundary migration planner walks the skew
//! off at runtime — hot masters hop from the straggler to underloaded
//! workers under a hysteresis band and a per-epoch move budget.
//!
//! The planner consumes deterministic compute-cost counters, never
//! clocks, so results are bitwise identical at every `--migrate` setting;
//! both panels assert that. Wall-clock improves only insofar as the
//! compute imbalance (max/mean per-worker epoch load) actually drops —
//! both columns are printed side by side.

use cyclops_algos::pagerank::{run_cyclops_pagerank, run_cyclops_pagerank_migrated};
use cyclops_algos::sssp::{run_cyclops_sssp, run_cyclops_sssp_migrated};
use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads;
use cyclops_engine::{CyclopsResult, MigrationReport, Sched};
use cyclops_graph::{Dataset, Graph};
use cyclops_partition::{EdgeCutPartition, EdgeCutPartitioner, HashPartitioner, MigrationConfig};

/// The skew the panel fights: fraction of the vertex ids re-homed onto
/// worker 0 on top of a hash partition (the CLI's `--skew` in library
/// form).
const SKEW: f64 = 0.6;

fn skewed(g: &Graph, workers: usize) -> EdgeCutPartition {
    let mut p = HashPartitioner.partition(g, workers);
    let cut = (SKEW * g.num_vertices() as f64) as usize;
    for a in p.assignment.iter_mut().take(cut) {
        *a = 0;
    }
    p
}

fn span(report: &MigrationReport) -> String {
    match report.imbalance_span() {
        Some((before, after)) => format!("{before:.2} -> {after:.2}"),
        None => "-".into(),
    }
}

fn row(
    table: &mut Table,
    name: &str,
    r: &CyclopsResult<f64, f64>,
    migration: Option<&MigrationReport>,
    baseline: &CyclopsResult<f64, f64>,
) {
    let bitwise = r
        .values
        .iter()
        .zip(&baseline.values)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bitwise, "{name}: migrated values drifted from static run");
    table.row(vec![
        name.into(),
        migration
            .map(|m| m.migrations_total.to_string())
            .unwrap_or_else(|| "-".into()),
        migration
            .map(|m| report::count(m.migrated_bytes))
            .unwrap_or_else(|| "-".into()),
        migration.map(span).unwrap_or_else(|| "-".into()),
        r.supersteps.to_string(),
        report::secs(r.elapsed),
        "yes".into(),
    ]);
}

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!(
        "Dynamic migration on a skewed partition (scale {fraction}, skew {SKEW})"
    ));
    let cluster = workloads::paper_cluster(12);
    let headers = [
        "variant",
        "moves",
        "migration bytes",
        "imbalance",
        "supersteps",
        "time (s)",
        "bitwise",
    ];

    // ---- SSSP on RoadCA: a long wavefront marches through the skew. ----
    report::subheading("SSSP RoadCA, 12 workers, 60% of masters piled on worker 0");
    let road = workloads::gen_graph(Dataset::RoadCa, fraction);
    let p = skewed(&road, cluster.num_workers());
    let baseline = run_cyclops_sssp(&road, &p, &cluster, workloads::SSSP_SOURCE, 100_000);
    let mut table = Table::new(&headers);
    row(
        &mut table,
        "static (migrate off)",
        &baseline,
        None,
        &baseline,
    );
    for every in [4usize, 8, 16] {
        let (r, m) = run_cyclops_sssp_migrated(
            &road,
            &p,
            &cluster,
            workloads::SSSP_SOURCE,
            100_000,
            Sched::Dynamic,
            0.015,
            0,
            every,
            MigrationConfig::default(),
            None,
        );
        row(
            &mut table,
            &format!("migrate every {every}"),
            &r,
            Some(&m),
            &baseline,
        );
    }
    table.print();

    // ---- PageRank on GWeb: stable frontier, skew persists all run. ----
    report::subheading("PageRank GWeb, 12 workers, 60% of masters piled on worker 0");
    let web = workloads::gen_graph(Dataset::GWeb, fraction);
    let p = skewed(&web, cluster.num_workers());
    let baseline = run_cyclops_pagerank(
        &web,
        &p,
        &cluster,
        workloads::PR_CONVERGENCE_EPSILON,
        workloads::PR_MAX_SUPERSTEPS,
    );
    let mut table = Table::new(&headers);
    row(
        &mut table,
        "static (migrate off)",
        &baseline,
        None,
        &baseline,
    );
    for every in [4usize, 8] {
        let (r, m) = run_cyclops_pagerank_migrated(
            &web,
            &p,
            &cluster,
            workloads::PR_CONVERGENCE_EPSILON,
            workloads::PR_MAX_SUPERSTEPS,
            Sched::Dynamic,
            0.015,
            0,
            every,
            MigrationConfig::default(),
            None,
        );
        row(
            &mut table,
            &format!("migrate every {every}"),
            &r,
            Some(&m),
            &baseline,
        );
    }
    table.print();
    println!(
        "  (the planner moves hot masters off worker 0 whenever its epoch load\n\
         \x20 exceeds 1.2x the mean, at most 8 per boundary; the load counters are\n\
         \x20 deterministic compute-cost proxies, so every variant lands on bitwise\n\
         \x20 identical values — asserted per row above)"
    );
}
