//! Ablations of the design choices, beyond the paper's own figures:
//!
//! 1. **dynamic computation** — Cyclops with local-error deactivation vs
//!    the same engine forced to keep every vertex active (ε = 0),
//! 2. **combiner** — Hama with and without message combining,
//! 3. **checkpoint content** — value-only Cyclops checkpoints (§3.6) vs
//!    full BSP checkpoints (values + flags + in-flight messages),
//! 4. **incremental vs cold restart** under topology mutation (the §8
//!    extension): recomputation cost of absorbing an edge insertion,
//! 5. **network model** — ideal wire vs modeled 1 GigE,
//! 6. **compute scheduler** — static frontier shards vs degree-weighted
//!    dynamic chunk claiming (bitwise-identical results, different CMP
//!    balance),
//! 7. **inbox discipline** — Hama with its own GlobalQueue inbox vs
//!    Cyclops' sharded per-sender lanes grafted on,
//! 8. **send-buffer pool** — per-lane reusable encode buffers vs a fresh
//!    allocation per batch (the Table 2 allocation story),
//! 9. **adaptive wire format** — the self-selecting sparse/dense
//!    `ReplicaBatch` framing vs the legacy per-update tuple framing it
//!    replaced (the encoder computes both sizes exactly, so one run
//!    reports both),
//! 10. **bucketed execution** — delta-stepping priority buckets vs one
//!     barrier per hop on the high-diameter SSSP workload,
//! 11. **hybrid replication** — full boundary replication vs the degree
//!     threshold that messages cold boundary vertices directly.

use cyclops_algos::pagerank::{BspPageRank, CyclopsPageRank};
use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads;
use cyclops_bsp::{run_bsp, BspConfig};
use cyclops_engine::{
    run_cyclops, run_cyclops_evolving, CyclopsConfig, MutationBatch, Sched, WarmStart,
};
use cyclops_graph::Dataset;
use cyclops_net::NetworkModel;
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!("Ablations (scale {fraction})"));
    let g = workloads::gen_graph(Dataset::GWeb, fraction);
    let cluster = workloads::paper_cluster(12);
    let p = HashPartitioner.partition(&g, cluster.num_workers());

    // ---- 1. Dynamic computation. ----
    report::subheading("dynamic computation: local-error deactivation vs always-active");
    let dynamic = run_cyclops(
        &CyclopsPageRank { epsilon: 1e-7 },
        &g,
        &p,
        &CyclopsConfig {
            cluster,
            max_supersteps: 100,
            ..Default::default()
        },
    );
    let exhaustive = run_cyclops(
        &CyclopsPageRank { epsilon: 0.0 },
        &g,
        &p,
        &CyclopsConfig {
            cluster,
            max_supersteps: dynamic.supersteps,
            ..Default::default()
        },
    );
    let mut table = Table::new(&[
        "variant",
        "supersteps",
        "vertex computes",
        "messages",
        "time (s)",
    ]);
    for (name, r) in [
        ("dynamic (eps=1e-7)", &dynamic),
        ("always-active (eps=0)", &exhaustive),
    ] {
        table.row(vec![
            name.into(),
            r.supersteps.to_string(),
            report::count(r.stats.iter().map(|s| s.active_vertices).sum()),
            report::count(r.counters.messages),
            report::secs(r.elapsed),
        ]);
    }
    table.print();

    // ---- 2. Combiner. ----
    report::subheading("Hama combiner: on vs off (PageRank rank-share messages)");
    let mut table = Table::new(&["variant", "messages", "bytes", "time (s)"]);
    for (name, use_combiner) in [("combiner on", true), ("combiner off", false)] {
        let r = run_bsp(
            &BspPageRank { epsilon: 1e-7 },
            &g,
            &p,
            &BspConfig {
                cluster,
                max_supersteps: 100,
                use_combiner,
                ..Default::default()
            },
        );
        table.row(vec![
            name.into(),
            report::count(r.counters.messages),
            report::count(r.counters.bytes),
            report::secs(r.elapsed),
        ]);
    }
    table.print();
    println!("  (combining helps only when several local vertices share a remote target)");

    // ---- 3. Checkpoint content. ----
    report::subheading("checkpoint size: Cyclops value-only (§3.6) vs BSP full state");
    let cy = run_cyclops(
        &CyclopsPageRank { epsilon: 1e-9 },
        &g,
        &p,
        &CyclopsConfig {
            cluster,
            max_supersteps: 40,
            checkpoint_every: Some(10),
            ..Default::default()
        },
    );
    let bsp = run_bsp(
        &BspPageRank { epsilon: 1e-9 },
        &g,
        &p,
        &BspConfig {
            cluster,
            max_supersteps: 40,
            checkpoint_every: Some(10),
            ..Default::default()
        },
    );
    let mut table = Table::new(&["engine", "superstep", "checkpoint bytes"]);
    for cp in &cy.checkpoints {
        table.row(vec![
            "Cyclops".into(),
            cp.superstep.to_string(),
            report::count(cp.storage_bytes()),
        ]);
    }
    for cp in &bsp.checkpoints {
        table.row(vec![
            "Hama".into(),
            cp.superstep.to_string(),
            report::count(cp.storage_bytes()),
        ]);
    }
    table.print();
    println!(
        "  (BSP checkpoints carry in-flight messages; Cyclops rebuilds replicas from masters)"
    );

    // ---- 4. Incremental vs cold mutation absorption. ----
    report::subheading("topology mutation: incremental warm start vs cold rerun");
    let batch = MutationBatch {
        add_edges: vec![(0, (g.num_vertices() / 2) as u32, None)],
        ..Default::default()
    };
    let config = CyclopsConfig {
        cluster,
        max_supersteps: 200,
        ..Default::default()
    };
    let partition_fn =
        |g: &cyclops_graph::Graph| HashPartitioner.partition(g, cluster.num_workers());
    let mut table = Table::new(&[
        "policy",
        "epoch supersteps",
        "epoch vertex computes",
        "epoch messages",
    ]);
    for (name, policy) in [
        ("incremental", WarmStart::Incremental),
        ("cold", WarmStart::Cold),
    ] {
        let r = run_cyclops_evolving(
            &CyclopsPageRank { epsilon: 1e-7 },
            &g,
            partition_fn,
            &config,
            &[(batch.clone(), policy)],
        );
        let epoch = &r.epochs[1];
        table.row(vec![
            name.into(),
            epoch.supersteps.to_string(),
            report::count(epoch.stats.iter().map(|s| s.active_vertices).sum()),
            report::count(epoch.counters.messages),
        ]);
    }
    table.print();
    println!("  (the warm epoch recomputes only the disturbance wave of the inserted edge)");

    // ---- 5. Network model: ideal (zero-cost wire) vs GigE-like. ----
    report::subheading("network model: ideal wire vs modeled 1 GigE (PR, 12 workers)");
    let mut table = Table::new(&["network", "engine", "time (s)", "speedup over Hama"]);
    // "congested" scales the wire down with the graphs: at 1/600 of the
    // paper's data volume, a proportionally slower wire puts the runs in the
    // same bandwidth-bound regime the real cluster was in.
    let congested = NetworkModel {
        bandwidth_bytes_per_sec: Some(10e6),
        batch_latency: std::time::Duration::from_micros(5),
        per_message: std::time::Duration::from_nanos(100),
    };
    for (name, network) in [
        ("ideal", NetworkModel::ideal()),
        ("gigabit", NetworkModel::gigabit()),
        ("congested", congested),
    ] {
        let hama = run_bsp(
            &BspPageRank { epsilon: 1e-7 },
            &g,
            &p,
            &BspConfig {
                cluster,
                max_supersteps: 100,
                use_combiner: true,
                network,
                ..Default::default()
            },
        );
        let cy = run_cyclops(
            &CyclopsPageRank { epsilon: 1e-7 },
            &g,
            &p,
            &CyclopsConfig {
                cluster,
                max_supersteps: 100,
                network,
                ..Default::default()
            },
        );
        table.row(vec![
            name.into(),
            "Hama".into(),
            report::secs(hama.elapsed),
            "1.00x".into(),
        ]);
        table.row(vec![
            name.into(),
            "Cyclops".into(),
            report::secs(cy.elapsed),
            report::speedup(hama.elapsed.as_secs_f64() / cy.elapsed.as_secs_f64()),
        ]);
    }
    table.print();
    println!(
        "  (with a modeled wire the wall-clock gap tracks the engines' byte-volume\n\
         \x20 ratio; with an ideal wire it tracks their compute/bookkeeping ratio —\n\
         \x20 on the paper's real cluster both effects stack)"
    );

    // ---- 6. Compute scheduler: static shards vs dynamic claiming. ----
    report::subheading("compute scheduler: static shards vs degree-weighted dynamic (CyclopsMT)");
    let mt = workloads::paper_cluster_mt(12);
    let pmt = HashPartitioner.partition(&g, mt.num_workers());
    let mut table = Table::new(&["scheduler", "supersteps", "vertex computes", "time (s)"]);
    let mut results = Vec::new();
    for (name, sched) in [("static", Sched::Static), ("dynamic", Sched::Dynamic)] {
        let r = run_cyclops(
            &CyclopsPageRank { epsilon: 1e-7 },
            &g,
            &pmt,
            &CyclopsConfig {
                cluster: mt,
                max_supersteps: 100,
                sched,
                ..Default::default()
            },
        );
        table.row(vec![
            name.into(),
            r.supersteps.to_string(),
            report::count(r.stats.iter().map(|s| s.active_vertices).sum()),
            report::secs(r.elapsed),
        ]);
        results.push(r);
    }
    table.print();
    let bitwise_equal = results[0]
        .values
        .iter()
        .zip(&results[1].values)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!(
        "  (chunk-ordered reduction keeps the schedulers bitwise identical: {})",
        if bitwise_equal {
            "verified"
        } else {
            "VIOLATED"
        }
    );

    // ---- 7. Inbox discipline on the Hama baseline. ----
    report::subheading("Hama inbox: GlobalQueue (one locked queue) vs Sharded sender lanes");
    let mut table = Table::new(&["inbox", "messages", "lock contentions", "time (s)"]);
    for (name, inbox) in [
        ("global queue", cyclops_net::InboxMode::GlobalQueue),
        ("sharded lanes", cyclops_net::InboxMode::Sharded),
    ] {
        let r = run_bsp(
            &BspPageRank { epsilon: 1e-7 },
            &g,
            &p,
            &BspConfig {
                cluster,
                max_supersteps: 100,
                use_combiner: true,
                inbox,
                ..Default::default()
            },
        );
        table.row(vec![
            name.into(),
            report::count(r.counters.messages),
            report::count(r.counters.lock_contentions),
            report::secs(r.elapsed),
        ]);
    }
    table.print();
    println!("  (sharded lanes remove enqueue contention even under Hama's semantics)");

    // ---- 8. Send-buffer pool. ----
    report::subheading("send path: pooled per-lane encode buffers vs fresh allocation per batch");
    let mut table = Table::new(&["send path", "wire bytes", "bytes allocated", "time (s)"]);
    for (name, pooled) in [("pooled", true), ("fresh", false)] {
        let r = run_cyclops(
            &CyclopsPageRank { epsilon: 1e-7 },
            &g,
            &p,
            &CyclopsConfig {
                cluster,
                max_supersteps: 100,
                pooled,
                ..Default::default()
            },
        );
        table.row(vec![
            name.into(),
            report::count(r.counters.bytes),
            report::count(r.counters.message_bytes_allocated as usize),
            report::secs(r.elapsed),
        ]);
    }
    table.print();
    println!(
        "  (pooled allocation is a per-lane warm-up constant; fresh allocation\n\
         \x20 equals the wire volume — O(messages) vs O(destinations))"
    );

    // ---- 9. Adaptive wire format vs legacy framing. ----
    report::subheading("wire format: adaptive sparse/dense ReplicaBatch vs legacy tuple framing");
    let road = workloads::gen_graph(Dataset::RoadCa, fraction);
    let proad = HashPartitioner.partition(&road, cluster.num_workers());
    let pr = run_cyclops(
        &CyclopsPageRank { epsilon: 1e-7 },
        &g,
        &p,
        &CyclopsConfig {
            cluster,
            max_supersteps: 100,
            ..Default::default()
        },
    );
    let sssp = cyclops_algos::sssp::run_cyclops_sssp(
        &road,
        &proad,
        &cluster,
        workloads::SSSP_SOURCE,
        100_000,
    );
    let mut table = Table::new(&[
        "workload",
        "wire bytes",
        "legacy bytes",
        "saved",
        "dense batches",
        "sparse batches",
    ]);
    for (name, c) in [("PR GWeb", &pr.counters), ("SSSP RoadCA", &sssp.counters)] {
        let legacy = c.bytes + c.wire_saved_bytes;
        table.row(vec![
            name.into(),
            report::count(c.bytes),
            report::count(legacy),
            format!("{:.1}%", 100.0 * c.wire_saved_bytes as f64 / legacy as f64),
            report::count(c.wire_dense_batches),
            report::count(c.wire_sparse_batches),
        ]);
    }
    table.print();
    println!(
        "  (the encoder prices both framings exactly and keeps the smaller, so\n\
         \x20 one run reports both; PageRank mixes dense early supersteps with a\n\
         \x20 sparse convergence tail, the SSSP wavefront stays sparse throughout)"
    );

    // ---- 10. Bucketed delta-stepping vs barrier-per-hop SSSP. ----
    report::subheading("bucketed execution: delta-stepping buckets vs one barrier per hop");
    let width = cyclops_algos::sssp::auto_bucket_width(&road);
    let bucketed = cyclops_algos::sssp::run_cyclops_sssp_bucketed(
        &road,
        &proad,
        &cluster,
        workloads::SSSP_SOURCE,
        100_000,
        width,
        cyclops_net::BucketMode::Det,
        0,
        None,
    );
    assert_eq!(
        sssp.values, bucketed.values,
        "bucketed distances must be bitwise identical"
    );
    let mut table = Table::new(&["variant", "supersteps", "messages", "bytes", "time (s)"]);
    for (name, supersteps, c, elapsed) in [
        (
            "barrier per hop",
            sssp.supersteps,
            &sssp.counters,
            sssp.elapsed,
        ),
        (
            "bucketed (auto width, det)",
            bucketed.supersteps,
            &bucketed.counters,
            bucketed.elapsed,
        ),
    ] {
        table.row(vec![
            name.into(),
            supersteps.to_string(),
            report::count(c.messages),
            report::count(c.bytes),
            report::secs(elapsed),
        ]);
    }
    table.print();
    println!(
        "  (width {width:.3} = 8x mean edge weight; each superstep drains one\n\
         \x20 priority bucket to a fixpoint behind a single barrier pair, so the\n\
         \x20 ~diameter-long chain of near-empty supersteps collapses; distances\n\
         \x20 are bitwise identical — asserted above)"
    );

    // ---- 11. Hybrid replication degree threshold. ----
    // Convergence epsilon, not the quick-mode one: a messaged vertex trades
    // standing per-superstep replica costs for a one-shot direct frame, so
    // the byte balance only settles once the run is long enough to amortize
    // the frame's fixed bytes.
    report::subheading(
        "hybrid replication: full vs degree-threshold (PR to convergence on GWeb, 12 workers)",
    );
    let auto = p.auto_replicate_threshold(&g);
    let pr_workload = workloads::Workload {
        dataset: Dataset::GWeb,
        algo: workloads::Algo::PageRank,
    };
    let mut table = Table::new(&[
        "threshold",
        "repl factor",
        "replicated",
        "messaged",
        "messages",
        "bytes",
        "direct bytes",
        "time (s)",
    ]);
    let mut baseline_values: Option<Vec<f64>> = None;
    for (label, t) in [
        ("0 (full)".to_string(), 0),
        ("2".to_string(), 2),
        ("8".to_string(), 8),
        (format!("auto ({auto})"), auto),
    ] {
        let r = workloads::run_on_cyclops_threshold(
            &pr_workload,
            &g,
            &p,
            &cluster,
            t,
            workloads::PR_CONVERGENCE_EPSILON,
        );
        let values = r.values_f64.clone().unwrap();
        match &baseline_values {
            None => baseline_values = Some(values),
            Some(base) => assert_eq!(
                base, &values,
                "hybrid results must be bitwise identical at threshold {t}"
            ),
        }
        let ingress = r.ingress.unwrap();
        table.row(vec![
            label,
            format!("{:.3}", r.replication_factor),
            report::count(ingress.replicated_boundary),
            report::count(ingress.messaged_boundary),
            report::count(r.counters.messages),
            report::count(r.counters.bytes),
            report::count(r.direct_bytes),
            report::secs(r.elapsed),
        ]);
    }
    table.print();
    println!(
        "  (cold boundary vertices — combined degree below the threshold — lose\n\
         \x20 their replicas and are reached by direct messages instead; ranks are\n\
         \x20 bitwise identical at every threshold — asserted above)"
    );
}
