//! Figure 3 (§2.2): the motivation for dynamic computation.
//!
//! 1. number of vertices converging in each superstep of BSP PageRank on
//!    GWeb (convergence is strongly asymmetric),
//! 2. ratio of redundant (same-value) messages per superstep,
//! 3. final per-vertex error distribution when the *global* error bound is
//!    reached, plus the GWeb-vs-Amazon converged-proportion mismatch the
//!    paper quotes (94.9% vs 87.7% at the same bound, §2.2.3).

use cyclops_bench::report::{self, Table};
use cyclops_bench::workloads;
use cyclops_graph::{reference, Dataset};
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

const EPSILON: f64 = 1e-10;

fn main() {
    let fraction = workloads::scale();
    report::heading(&format!(
        "Figure 3: BSP PageRank motivation (GWeb stand-in, scale {fraction})"
    ));

    let g = workloads::gen_graph(Dataset::GWeb, fraction);
    println!(
        "graph: {} vertices, {} edges",
        report::count(g.num_vertices()),
        report::count(g.num_edges())
    );

    // ---- Panel 1: vertices converged per superstep (reference sweeps). ----
    report::subheading("Fig 3(1): newly converged vertices per superstep (|Δ| <= 1e-10)");
    let n = g.num_vertices();
    let mut current = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    let mut converged = vec![false; n];
    let mut table = Table::new(&["superstep", "newly converged", "cumulative %"]);
    let mut cumulative = 0usize;
    let mut rows = 0usize;
    for step in 0..300 {
        reference::pagerank_step(&g, &current, &mut next);
        let mut newly = 0usize;
        for v in 0..n {
            if !converged[v] && (next[v] - current[v]).abs() <= EPSILON {
                converged[v] = true;
                newly += 1;
            }
        }
        cumulative += newly;
        std::mem::swap(&mut current, &mut next);
        if newly > 0 && rows < 30 {
            rows += 1;
            table.row(vec![
                step.to_string(),
                report::count(newly),
                format!("{:.1}%", 100.0 * cumulative as f64 / n as f64),
            ]);
        }
        if cumulative == n {
            break;
        }
    }
    table.print();

    // ---- Panel 2: redundant message ratio per superstep (BSP engine). ----
    report::subheading("Fig 3(2): ratio of redundant messages per superstep (BSP)");
    let cluster = workloads::paper_cluster(12);
    let p = HashPartitioner.partition(&g, cluster.num_workers());
    let r = cyclops_algos::pagerank::run_bsp_pagerank(&g, &p, &cluster, EPSILON, 60);
    let mut table = Table::new(&["superstep", "messages", "redundant", "ratio"]);
    for s in r
        .stats
        .iter()
        .filter(|s| s.superstep % 4 == 0 || s.superstep < 8)
    {
        let ratio = if s.messages_sent > 0 {
            s.redundant_messages as f64 / s.messages_sent as f64
        } else {
            0.0
        };
        table.row(vec![
            s.superstep.to_string(),
            report::count(s.messages_sent),
            report::count(s.redundant_messages),
            format!("{:.2}", ratio),
        ]);
    }
    table.print();
    let late: Vec<&cyclops_net::SuperstepStats> =
        r.stats.iter().filter(|s| s.superstep >= 14).collect();
    if !late.is_empty() {
        let msgs: usize = late.iter().map(|s| s.messages_sent).sum();
        let red: usize = late.iter().map(|s| s.redundant_messages).sum();
        println!(
            "  after superstep 14: {:.0}% of messages are redundant (paper: >30%)",
            100.0 * red as f64 / msgs.max(1) as f64
        );
    }

    // ---- Panel 3: final error distribution at global convergence. ----
    report::subheading("Fig 3(3): per-vertex error when the GLOBAL bound is reached");
    let final_errors = |g: &cyclops_graph::Graph, values: &[f64]| -> Vec<f64> {
        let mut next = vec![0.0; values.len()];
        reference::pagerank_step(g, values, &mut next);
        values
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .collect()
    };
    let mut proportions = Vec::new();
    for ds in [Dataset::GWeb, Dataset::Amazon] {
        let g = workloads::gen_graph(ds, fraction);
        let p = HashPartitioner.partition(&g, cluster.num_workers());
        let r = cyclops_algos::pagerank::run_bsp_pagerank(&g, &p, &cluster, EPSILON, 400);
        let errors = final_errors(&g, &r.values);
        let converged = errors.iter().filter(|&&e| e <= EPSILON).count();
        let prop = 100.0 * converged as f64 / g.num_vertices() as f64;
        proportions.push((ds, prop));

        // The paper's key point: unconverged vertices concentrate among the
        // high-rank (important) vertices.
        let mut by_rank: Vec<(f64, f64)> = r
            .values
            .iter()
            .copied()
            .zip(errors.iter().copied())
            .collect();
        by_rank.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let top = &by_rank[..by_rank.len() / 10];
        let bottom = &by_rank[by_rank.len() / 2..];
        let unconv = |slice: &[(f64, f64)]| {
            100.0 * slice.iter().filter(|&&(_, e)| e > EPSILON).count() as f64 / slice.len() as f64
        };
        println!(
            "  {ds}: {prop:.1}% converged at global bound; unconverged among top-10% ranks: \
             {:.1}%, among bottom-50%: {:.1}%",
            unconv(top),
            unconv(bottom)
        );
    }
    println!(
        "  same bound, different graphs -> different converged proportions: \
         {} {:.1}% vs {} {:.1}% (paper: 94.9% vs 87.7%)",
        proportions[0].0, proportions[0].1, proportions[1].0, proportions[1].1
    );
}
