//! Plain-text report formatting shared by the benchmark targets.

use cyclops_net::trace::{RunTrace, TraceRecord};
use std::time::Duration;

/// Prints a top-level experiment heading.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a sub-heading.
pub fn subheading(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Formats a duration in seconds with 3 decimals (the paper reports
/// seconds).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a large count with thousands separators.
pub fn count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a byte count with a binary unit suffix.
pub fn bytes(n: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{n} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// A fixed-width text table writer.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        let mut t = Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.push(headers.iter().map(|s| s.to_string()).collect());
        t
    }

    /// Adds one row; panics if the column count mismatches.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.widths.len(), "column count mismatch");
        self.push(cells);
    }

    fn push(&mut self, cells: Vec<String>) {
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Prints the table with a separator under the header.
    pub fn print(&self) {
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
            if i == 0 {
                let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                println!("  {}", sep.join("  "));
            }
        }
    }
}

/// A JSON scalar for [`JsonReport`] rows. Hand-rolled (no serde in the
/// dependency closure): benches only need flat records of strings and
/// numbers.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A string, escaped on output.
    Str(String),
    /// A float, printed with enough digits to round-trip.
    Num(f64),
    /// An unsigned integer, printed exactly.
    Int(u64),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}
impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Int(n)
    }
}
impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Int(n as u64)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonValue {
    fn render(&self) -> String {
        match self {
            JsonValue::Str(s) => format!("\"{}\"", json_escape(s)),
            JsonValue::Num(x) if x.is_finite() => {
                // Shortest representation that round-trips through f64.
                let short = format!("{x}");
                if short.parse::<f64>() == Ok(*x) {
                    short
                } else {
                    format!("{x:e}")
                }
            }
            // JSON has no NaN/Infinity; null is the conventional stand-in.
            JsonValue::Num(_) => "null".to_string(),
            JsonValue::Int(n) => n.to_string(),
        }
    }
}

/// A machine-readable benchmark baseline: named metadata plus a list of
/// flat records, serialized as pretty-printed JSON. Committed baselines
/// (e.g. `BENCH_fig9.json`) let later PRs diff quick-mode numbers without
/// re-parsing the text tables.
pub struct JsonReport {
    name: String,
    meta: Vec<(String, JsonValue)>,
    rows: Vec<Vec<(String, JsonValue)>>,
}

impl JsonReport {
    /// Starts a report labeled `name` (stored under the `"bench"` key).
    pub fn new(name: &str) -> Self {
        JsonReport {
            name: name.to_string(),
            meta: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Attaches a top-level metadata field (scale, date, config, ...).
    pub fn meta(&mut self, key: &str, value: impl Into<JsonValue>) -> &mut Self {
        self.meta.push((key.to_string(), value.into()));
        self
    }

    /// Appends one flat record.
    pub fn row(&mut self, fields: Vec<(&str, JsonValue)>) -> &mut Self {
        self.rows.push(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
        self
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.name)));
        for (k, v) in &self.meta {
            out.push_str(&format!("  \"{}\": {},\n", json_escape(k), v.render()));
        }
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let fields: Vec<String> = row
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", json_escape(k), v.render()))
                .collect();
            out.push_str(&format!(
                "    {{{}}}{}\n",
                fields.join(", "),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Parses the flat `"rows"` records of a committed [`JsonReport`] baseline
/// back into key → raw-value maps, so benches can diff fresh numbers against
/// the committed file without a JSON dependency. The inverse of
/// [`JsonReport::render`]'s row format only: one `{...}` object per line,
/// string values unescaped of `\"` and `\\`, numbers kept as their source
/// text (parse at the use site).
pub fn parse_json_rows(text: &str) -> Vec<std::collections::BTreeMap<String, String>> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(body) = line.strip_prefix('{').and_then(|l| l.strip_suffix('}')) else {
            continue;
        };
        // Split on top-level commas, respecting string quoting.
        let mut fields = Vec::new();
        let (mut start, mut in_str, mut escaped) = (0usize, false, false);
        for (i, c) in body.char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                ',' if !in_str => {
                    fields.push(&body[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        fields.push(&body[start..]);
        let mut row = std::collections::BTreeMap::new();
        for f in fields {
            let Some((k, v)) = f.split_once(':') else {
                continue;
            };
            let key = k.trim().trim_matches('"').to_string();
            let v = v.trim();
            let value = match v.strip_prefix('"').and_then(|v| v.strip_suffix('"')) {
                Some(s) => s.replace("\\\"", "\"").replace("\\\\", "\\"),
                None => v.to_string(),
            };
            row.insert(key, value);
        }
        rows.push(row);
    }
    rows
}

/// Builds a per-superstep table from an engine trace, summing worker records
/// and converting phase durations to milliseconds. This supersedes hand-built
/// tables over `SuperstepStats`: any engine with a [`TraceSink`] attached
/// yields the same columns, including phase attribution and drain counts the
/// old plumbing never carried.
///
/// [`TraceSink`]: cyclops_net::trace::TraceSink
pub fn trace_table(trace: &RunTrace) -> Table {
    let mut table = Table::new(&[
        "superstep",
        "frontier",
        "computed",
        "activated",
        "drained",
        "messages",
        "bytes",
        "prs_ms",
        "cmp_ms",
        "snd_ms",
        "syn_ms",
        "cp_ms",
        "straggler",
        "wait_ms",
    ]);
    let cp = critical_path(trace);
    let supersteps = trace.supersteps();
    let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
    for s in 0..supersteps {
        let rows: Vec<&TraceRecord> = trace.records.iter().filter(|r| r.superstep == s).collect();
        let sum = |f: &dyn Fn(&TraceRecord) -> u64| rows.iter().map(|r| f(r)).sum::<u64>();
        let path = cp.supersteps.iter().find(|p| p.superstep == s);
        let (cp_ms, straggler, wait_ms) = match path {
            Some(p) => (
                ms(p.span_ns),
                format!("w{} {}", p.straggler, p.straggler_phase.label()),
                ms(p.caused_wait_ns),
            ),
            None => ("-".into(), "-".into(), "-".into()),
        };
        table.row(vec![
            s.to_string(),
            count(sum(&|r| r.frontier) as usize),
            count(sum(&|r| r.computed) as usize),
            count(sum(&|r| r.activated) as usize),
            count(sum(&|r| r.drained) as usize),
            count(sum(&|r| r.messages) as usize),
            count(sum(&|r| r.bytes) as usize),
            ms(sum(&|r| r.parse_ns)),
            ms(sum(&|r| r.compute_ns)),
            ms(sum(&|r| r.send_ns)),
            ms(sum(&|r| r.sync_ns)),
            cp_ms,
            straggler,
            wait_ms,
        ]);
    }
    table
}

/// Reconstructs the [`CriticalPath`] of a trace by grouping per-worker
/// records by superstep, in superstep order.
///
/// [`CriticalPath`]: cyclops_obs::CriticalPath
pub fn critical_path(trace: &RunTrace) -> cyclops_obs::CriticalPath {
    use std::collections::BTreeMap;
    let mut steps: BTreeMap<u64, Vec<cyclops_obs::PhaseSample>> = BTreeMap::new();
    for r in &trace.records {
        steps
            .entry(r.superstep)
            .or_default()
            .push(cyclops_obs::PhaseSample {
                worker: r.worker,
                parse_ns: r.parse_ns,
                compute_ns: r.compute_ns,
                send_ns: r.send_ns,
                sync_ns: r.sync_ns,
            });
    }
    cyclops_obs::CriticalPath::analyze(steps)
}

/// One-line straggler attribution: which worker/phase caused the largest
/// share of barrier wait across the run, and how big that share is
/// relative to the aggregate worker time.
pub fn critical_path_summary(trace: &RunTrace) -> String {
    let cp = critical_path(trace);
    let ranking = cp.straggler_ranking();
    let pool = cp.total_work_ns + cp.total_wait_ns + cp.total_residual_ns;
    match ranking.first() {
        Some(top) if pool > 0 => format!(
            "critical path {:.2} ms; top straggler: worker {} {} caused {:.2} ms barrier wait ({:.1}% of aggregate worker time, {} supersteps)",
            cp.total_span_ns as f64 / 1e6,
            top.worker,
            top.phase.label(),
            top.caused_wait_ns as f64 / 1e6,
            100.0 * top.caused_wait_ns as f64 / pool as f64,
            top.supersteps,
        ),
        _ => format!(
            "critical path {:.2} ms; no straggler attribution (no barrier wait recorded)",
            cp.total_span_ns as f64 / 1e6
        ),
    }
}

/// Builds the tail-latency table of a trace: one row per phase with count,
/// mean, p50/p90/p99 and max over the per-worker phase latencies. The
/// quantiles come from the same log-linear histograms the live metrics
/// registry uses (≤ 12.5 % relative bucket error), so figure outputs and
/// `cyclops metrics` agree. Per-record latencies are per *worker* — a
/// superstep with 4 workers contributes 4 samples per phase.
pub fn phase_quantile_table(trace: &RunTrace) -> Table {
    use cyclops_obs::LogLinearHistogram;
    let mut table = Table::new(&[
        "phase", "records", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms",
    ]);
    type PhaseNs = fn(&TraceRecord) -> u64;
    let phases: [(&str, PhaseNs); 4] = [
        ("prs", |r| r.parse_ns),
        ("cmp", |r| r.compute_ns),
        ("snd", |r| r.send_ns),
        ("syn", |r| r.sync_ns),
    ];
    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    for (name, get) in phases {
        let h = LogLinearHistogram::new();
        for r in &trace.records {
            h.record(get(r));
        }
        let s = h.snapshot();
        if s.is_empty() {
            table.row(vec![
                name.into(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            name.into(),
            count(s.count as usize),
            ms(s.mean() as u64),
            ms(s.percentile(0.50)),
            ms(s.percentile(0.90)),
            ms(s.percentile(0.99)),
            ms(s.max),
        ]);
    }
    table
}

/// Prints a [`trace_table`] and its [`phase_quantile_table`] under a
/// heading naming the traced engine.
pub fn print_trace(trace: &RunTrace) {
    subheading(&format!(
        "superstep trace — {} on {} ({} workers)",
        trace.meta.engine, trace.meta.cluster, trace.meta.workers
    ));
    trace_table(trace).print();
    println!();
    println!("  {}", critical_path_summary(trace));
    println!();
    println!("  phase tail latency (per worker-record):");
    phase_quantile_table(trace).print();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_net::trace::TraceMeta;

    #[test]
    fn count_formats_thousands() {
        assert_eq!(count(5), "5");
        assert_eq!(count(1234), "1,234");
        assert_eq!(count(1_234_567), "1,234,567");
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_columns() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_report_renders_and_parses_shapes() {
        let mut r = JsonReport::new("fig9");
        r.meta("scale", 0.1).meta("workers", 48usize);
        r.row(vec![
            ("workload", "PR \"quoted\"".into()),
            ("speedup", 1.5.into()),
            ("messages", 1234usize.into()),
        ]);
        r.row(vec![("workload", "SSSP".into()), ("speedup", 2.0.into())]);
        let s = r.render();
        assert!(s.starts_with("{\n  \"bench\": \"fig9\""));
        assert!(s.contains("\"scale\": 0.1"));
        assert!(s.contains("\"workload\": \"PR \\\"quoted\\\"\""));
        assert!(s.contains("\"messages\": 1234"));
        assert!(s.trim_end().ends_with('}'));
        // Balanced braces/brackets — cheap structural sanity without a parser.
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn parse_json_rows_round_trips_a_report() {
        let mut r = JsonReport::new("fig9");
        r.meta("scale", 0.1);
        r.row(vec![
            ("workload", "PR \"quoted\", yes".into()),
            ("speedup", 1.5.into()),
            ("messages", 1234usize.into()),
        ]);
        r.row(vec![("workload", "SSSP".into()), ("speedup", 2.0.into())]);
        let rows = parse_json_rows(&r.render());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["workload"], "PR \"quoted\", yes");
        assert_eq!(rows[0]["speedup"].parse::<f64>().unwrap(), 1.5);
        assert_eq!(rows[0]["messages"].parse::<u64>().unwrap(), 1234);
        assert_eq!(rows[1]["workload"], "SSSP");
    }

    #[test]
    fn json_value_handles_non_finite_floats() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(0.1).render(), "0.1");
        assert_eq!(JsonValue::Int(u64::MAX).render(), u64::MAX.to_string());
    }

    #[test]
    fn trace_table_sums_workers_per_superstep() {
        let trace = RunTrace {
            spans: Vec::new(),
            mem: Vec::new(),
            meta: TraceMeta {
                engine: "cyclops".into(),
                cluster: "1x2x1".into(),
                workers: 2,
                values: false,
            },
            records: vec![
                TraceRecord {
                    superstep: 0,
                    worker: 0,
                    computed: 3,
                    messages: 5,
                    ..Default::default()
                },
                TraceRecord {
                    superstep: 0,
                    worker: 1,
                    computed: 4,
                    messages: 6,
                    ..Default::default()
                },
                TraceRecord {
                    superstep: 1,
                    worker: 0,
                    computed: 1,
                    ..Default::default()
                },
                TraceRecord {
                    superstep: 1,
                    worker: 1,
                    computed: 2,
                    ..Default::default()
                },
            ],
        };
        let t = trace_table(&trace);
        // header + 2 superstep rows
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[1][2], "7"); // computed, superstep 0
        assert_eq!(t.rows[1][5], "11"); // messages, superstep 0
        assert_eq!(t.rows[2][2], "3"); // computed, superstep 1
    }

    fn skewed_trace() -> RunTrace {
        let rec = |superstep, worker, compute_ns, sync_ns| TraceRecord {
            superstep,
            worker,
            compute_ns,
            sync_ns,
            ..Default::default()
        };
        RunTrace {
            spans: Vec::new(),
            mem: Vec::new(),
            meta: TraceMeta {
                engine: "cyclops".into(),
                cluster: "1x2x1".into(),
                workers: 2,
                values: false,
            },
            records: vec![
                // Worker 0's 9 ms CMP holds worker 1 at the barrier for 8 ms.
                rec(0, 0, 9_000_000, 0),
                rec(0, 1, 1_000_000, 8_000_000),
            ],
        }
    }

    #[test]
    fn trace_table_attributes_the_straggler() {
        let t = trace_table(&skewed_trace());
        let header = &t.rows[0];
        assert_eq!(header[11], "cp_ms");
        assert_eq!(header[12], "straggler");
        assert_eq!(header[13], "wait_ms");
        let row = &t.rows[1];
        assert_eq!(row[11], "9.00"); // span of worker 0's chain
        assert_eq!(row[12], "w0 CMP");
        assert_eq!(row[13], "8.00"); // worker 1's barrier wait
    }

    #[test]
    fn critical_path_summary_names_the_top_straggler() {
        let s = critical_path_summary(&skewed_trace());
        assert!(s.contains("critical path 9.00 ms"), "{s}");
        assert!(s.contains("worker 0 CMP"), "{s}");
        assert!(s.contains("8.00 ms barrier wait"), "{s}");
        // Empty trace degrades gracefully.
        let empty = RunTrace {
            spans: Vec::new(),
            mem: Vec::new(),
            meta: TraceMeta::default(),
            records: vec![],
        };
        assert!(critical_path_summary(&empty).contains("no straggler attribution"));
    }

    #[test]
    fn phase_quantile_table_reports_tail_latency() {
        let records = (0..100)
            .map(|i| TraceRecord {
                superstep: i,
                compute_ns: 1_000_000, // 1 ms for every record...
                send_ns: if i >= 98 { 80_000_000 } else { 1_000_000 }, // ...two 80 ms outliers
                ..Default::default()
            })
            .collect();
        let trace = RunTrace {
            spans: Vec::new(),
            mem: Vec::new(),
            meta: TraceMeta::default(),
            records,
        };
        let t = phase_quantile_table(&trace);
        assert_eq!(t.rows.len(), 5); // header + 4 phases
                                     // Pin the column layout the quantile bindings below rely on.
        let header = &t.rows[0];
        assert_eq!(header[3], "p50_ms");
        assert_eq!(header[4], "p90_ms");
        assert_eq!(header[5], "p99_ms");
        assert_eq!(header[6], "max_ms");
        let cmp = &t.rows[2];
        assert_eq!(cmp[0], "cmp");
        assert_eq!(cmp[1], "100");
        let p50: f64 = cmp[3].parse().unwrap();
        assert!((p50 - 1.0).abs() / 1.0 <= 0.125, "cmp p50 {p50}");
        let snd = &t.rows[3];
        let p50: f64 = snd[3].parse().unwrap();
        let p90: f64 = snd[4].parse().unwrap();
        let p99: f64 = snd[5].parse().unwrap();
        let max: f64 = snd[6].parse().unwrap();
        assert!((p50 - 1.0).abs() / 1.0 <= 0.125, "snd p50 {p50}");
        assert!(p90 < 10.0, "snd p90 should not see the outliers: {p90}");
        assert!(
            (p99 - 80.0).abs() / 80.0 <= 0.125,
            "snd p99 should surface the tail: {p99}"
        );
        assert!((max - 80.0).abs() / 80.0 <= 0.125, "snd max {max}");
    }
}
