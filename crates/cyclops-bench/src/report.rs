//! Plain-text report formatting shared by the benchmark targets.

use cyclops_net::trace::{RunTrace, TraceRecord};
use std::time::Duration;

/// Prints a top-level experiment heading.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a sub-heading.
pub fn subheading(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Formats a duration in seconds with 3 decimals (the paper reports
/// seconds).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a large count with thousands separators.
pub fn count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A fixed-width text table writer.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        let mut t = Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.push(headers.iter().map(|s| s.to_string()).collect());
        t
    }

    /// Adds one row; panics if the column count mismatches.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.widths.len(), "column count mismatch");
        self.push(cells);
    }

    fn push(&mut self, cells: Vec<String>) {
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Prints the table with a separator under the header.
    pub fn print(&self) {
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
            if i == 0 {
                let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                println!("  {}", sep.join("  "));
            }
        }
    }
}

/// Builds a per-superstep table from an engine trace, summing worker records
/// and converting phase durations to milliseconds. This supersedes hand-built
/// tables over `SuperstepStats`: any engine with a [`TraceSink`] attached
/// yields the same columns, including phase attribution and drain counts the
/// old plumbing never carried.
///
/// [`TraceSink`]: cyclops_net::trace::TraceSink
pub fn trace_table(trace: &RunTrace) -> Table {
    let mut table = Table::new(&[
        "superstep",
        "frontier",
        "computed",
        "activated",
        "drained",
        "messages",
        "bytes",
        "prs_ms",
        "cmp_ms",
        "snd_ms",
        "syn_ms",
    ]);
    let supersteps = trace.supersteps();
    let ms = |ns: u64| format!("{:.2}", ns as f64 / 1e6);
    for s in 0..supersteps {
        let rows: Vec<&TraceRecord> = trace.records.iter().filter(|r| r.superstep == s).collect();
        let sum = |f: &dyn Fn(&TraceRecord) -> u64| rows.iter().map(|r| f(r)).sum::<u64>();
        table.row(vec![
            s.to_string(),
            count(sum(&|r| r.frontier) as usize),
            count(sum(&|r| r.computed) as usize),
            count(sum(&|r| r.activated) as usize),
            count(sum(&|r| r.drained) as usize),
            count(sum(&|r| r.messages) as usize),
            count(sum(&|r| r.bytes) as usize),
            ms(sum(&|r| r.parse_ns)),
            ms(sum(&|r| r.compute_ns)),
            ms(sum(&|r| r.send_ns)),
            ms(sum(&|r| r.sync_ns)),
        ]);
    }
    table
}

/// Builds the tail-latency table of a trace: one row per phase with count,
/// mean, p50/p90/p99 and max over the per-worker phase latencies. The
/// quantiles come from the same log-linear histograms the live metrics
/// registry uses (≤ 12.5 % relative bucket error), so figure outputs and
/// `cyclops metrics` agree. Per-record latencies are per *worker* — a
/// superstep with 4 workers contributes 4 samples per phase.
pub fn phase_quantile_table(trace: &RunTrace) -> Table {
    use cyclops_obs::LogLinearHistogram;
    let mut table = Table::new(&[
        "phase", "records", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms",
    ]);
    type PhaseNs = fn(&TraceRecord) -> u64;
    let phases: [(&str, PhaseNs); 4] = [
        ("prs", |r| r.parse_ns),
        ("cmp", |r| r.compute_ns),
        ("snd", |r| r.send_ns),
        ("syn", |r| r.sync_ns),
    ];
    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    for (name, get) in phases {
        let h = LogLinearHistogram::new();
        for r in &trace.records {
            h.record(get(r));
        }
        let s = h.snapshot();
        if s.is_empty() {
            table.row(vec![
                name.into(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        table.row(vec![
            name.into(),
            count(s.count as usize),
            ms(s.mean() as u64),
            ms(s.percentile(0.50)),
            ms(s.percentile(0.90)),
            ms(s.percentile(0.99)),
            ms(s.max),
        ]);
    }
    table
}

/// Prints a [`trace_table`] and its [`phase_quantile_table`] under a
/// heading naming the traced engine.
pub fn print_trace(trace: &RunTrace) {
    subheading(&format!(
        "superstep trace — {} on {} ({} workers)",
        trace.meta.engine, trace.meta.cluster, trace.meta.workers
    ));
    trace_table(trace).print();
    println!();
    println!("  phase tail latency (per worker-record):");
    phase_quantile_table(trace).print();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_net::trace::TraceMeta;

    #[test]
    fn count_formats_thousands() {
        assert_eq!(count(5), "5");
        assert_eq!(count(1234), "1,234");
        assert_eq!(count(1_234_567), "1,234,567");
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_columns() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn trace_table_sums_workers_per_superstep() {
        let trace = RunTrace {
            meta: TraceMeta {
                engine: "cyclops".into(),
                cluster: "1x2x1".into(),
                workers: 2,
                values: false,
            },
            records: vec![
                TraceRecord {
                    superstep: 0,
                    worker: 0,
                    computed: 3,
                    messages: 5,
                    ..Default::default()
                },
                TraceRecord {
                    superstep: 0,
                    worker: 1,
                    computed: 4,
                    messages: 6,
                    ..Default::default()
                },
                TraceRecord {
                    superstep: 1,
                    worker: 0,
                    computed: 1,
                    ..Default::default()
                },
                TraceRecord {
                    superstep: 1,
                    worker: 1,
                    computed: 2,
                    ..Default::default()
                },
            ],
        };
        let t = trace_table(&trace);
        // header + 2 superstep rows
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[1][2], "7"); // computed, superstep 0
        assert_eq!(t.rows[1][5], "11"); // messages, superstep 0
        assert_eq!(t.rows[2][2], "3"); // computed, superstep 1
    }

    #[test]
    fn phase_quantile_table_reports_tail_latency() {
        let records = (0..100)
            .map(|i| TraceRecord {
                superstep: i,
                compute_ns: 1_000_000, // 1 ms for every record...
                send_ns: if i == 99 { 80_000_000 } else { 1_000_000 }, // ...one 80 ms outlier
                ..Default::default()
            })
            .collect();
        let trace = RunTrace {
            meta: TraceMeta::default(),
            records,
        };
        let t = phase_quantile_table(&trace);
        assert_eq!(t.rows.len(), 5); // header + 4 phases
        let cmp = &t.rows[2];
        assert_eq!(cmp[0], "cmp");
        assert_eq!(cmp[1], "100");
        let p50: f64 = cmp[3].parse().unwrap();
        assert!((p50 - 1.0).abs() / 1.0 <= 0.125, "cmp p50 {p50}");
        let snd = &t.rows[3];
        let p50: f64 = snd[3].parse().unwrap();
        let p99: f64 = snd[4].parse().unwrap(); // p90 col
        let max: f64 = snd[6].parse().unwrap();
        assert!((p50 - 1.0).abs() / 1.0 <= 0.125, "snd p50 {p50}");
        assert!(p99 < 10.0, "snd p90 should not see the outlier: {p99}");
        assert!((max - 80.0).abs() / 80.0 <= 0.125, "snd max {max}");
    }
}
