//! Plain-text report formatting shared by the benchmark targets.

use std::time::Duration;

/// Prints a top-level experiment heading.
pub fn heading(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a sub-heading.
pub fn subheading(title: &str) {
    println!();
    println!("--- {title} ---");
}

/// Formats a duration in seconds with 3 decimals (the paper reports
/// seconds).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio as `N.NNx`.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a large count with thousands separators.
pub fn count(n: usize) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A fixed-width text table writer.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        let mut t = Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.push(headers.iter().map(|s| s.to_string()).collect());
        t
    }

    /// Adds one row; panics if the column count mismatches.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.widths.len(), "column count mismatch");
        self.push(cells);
    }

    fn push(&mut self, cells: Vec<String>) {
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Prints the table with a separator under the header.
    pub fn print(&self) {
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
            if i == 0 {
                let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                println!("  {}", sep.join("  "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_formats_thousands() {
        assert_eq!(count(5), "5");
        assert_eq!(count(1234), "1,234");
        assert_eq!(count(1_234_567), "1,234,567");
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_columns() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
