#![warn(missing_docs)]

//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§2.2 motivation figures and §6).
//!
//! Each `benches/*.rs` target (built with `harness = false`) regenerates one
//! experiment and prints the paper's rows; `EXPERIMENTS.md` records
//! paper-reported vs measured values. Shared machinery lives here:
//!
//! * [`workloads`] — the seven dataset×algorithm workloads of Table 1,
//!   runnable on every engine with one call,
//! * [`report`] — plain-text table formatting shared by all benches.
//!
//! **Scale knob.** Experiments honor the `CYCLOPS_SCALE` environment
//! variable (default `0.1`): dataset stand-ins are generated at that
//! fraction of their default size (which is itself ≈1/60 of the paper's
//! graphs — see `cyclops_graph::datasets`).
//!
//! **Single-core caveat.** The reference environment runs the simulated
//! cluster on one CPU; worker threads timeslice, so wall-clock measures
//! *total work* rather than parallel speedup. All comparisons the paper
//! makes between engines (message counts, redundant computation,
//! contention, phase breakdowns) survive this; raw scalability-with-cores
//! does not, and EXPERIMENTS.md flags the affected panels.

pub mod report;
pub mod workloads;
