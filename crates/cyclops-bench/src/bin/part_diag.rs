//! Quick partition-quality diagnostic: hash vs multilevel cut and
//! replication factor on the dataset stand-ins.
use cyclops_graph::Dataset;
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner, MultilevelPartitioner};

fn main() {
    let f: f64 = std::env::var("F")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);
    for ds in Dataset::all() {
        let g = ds.generate_scaled(f, ds.default_seed());
        let h = HashPartitioner.partition(&g, 48);
        let m = MultilevelPartitioner::default().partition(&g, 48);
        println!(
            "{:<9} cut {:>7} -> {:>7} ({:.0}%)  rf {:.2} -> {:.2}  bal {:.2}",
            ds.to_string(),
            h.edge_cut(&g),
            m.edge_cut(&g),
            100.0 * m.edge_cut(&g) as f64 / h.edge_cut(&g).max(1) as f64,
            h.replication_factor(&g),
            m.replication_factor(&g),
            m.balance(),
        );
    }
}
