use cyclops_bench::workloads::{self, run_on_cyclops, run_on_hama};
use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};
fn main() {
    let f: f64 = std::env::var("F")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.1);
    let w = workloads::paper_workloads()[6];
    let g = workloads::gen_graph(w.dataset, f);
    println!("graph: {} v {} e", g.num_vertices(), g.num_edges());
    let cluster = workloads::paper_cluster(48);
    let p = HashPartitioner.partition(&g, 48);
    let h = run_on_hama(&w, &g, &p, &cluster, f);
    let c = run_on_cyclops(&w, &g, &p, &cluster, f);
    println!(
        "hama: {:?} supersteps={} msgs={} active_total={}",
        h.elapsed,
        h.supersteps,
        h.counters.messages,
        h.stats.iter().map(|s| s.active_vertices).sum::<usize>()
    );
    println!(
        "cyc : {:?} supersteps={} msgs={} active_total={}",
        c.elapsed,
        c.supersteps,
        c.counters.messages,
        c.stats.iter().map(|s| s.active_vertices).sum::<usize>()
    );
    let ph = h
        .stats
        .iter()
        .fold(cyclops_net::PhaseTimes::default(), |a, s| {
            a.merge(&s.phase_times)
        });
    let pc = c
        .stats
        .iter()
        .fold(cyclops_net::PhaseTimes::default(), |a, s| {
            a.merge(&s.phase_times)
        });
    println!(
        "hama phases: syn={:?} prs={:?} cmp={:?} snd={:?}",
        ph.sync, ph.parse, ph.compute, ph.send
    );
    println!(
        "cyc  phases: syn={:?} prs={:?} cmp={:?} snd={:?}",
        pc.sync, pc.parse, pc.compute, pc.send
    );
}
