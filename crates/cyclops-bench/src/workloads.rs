//! The paper's seven benchmark workloads (Table 1), runnable on every
//! engine with one call.

use cyclops_algos::als::{run_bsp_als, run_cyclops_als, AlsParams};
use cyclops_algos::cd::{run_bsp_cd, run_cyclops_cd};
use cyclops_algos::pagerank::{
    run_bsp_pagerank, run_cyclops_pagerank, run_cyclops_pagerank_tuned, run_gas_pagerank,
};
use cyclops_algos::sssp::{run_bsp_sssp, run_cyclops_sssp_bucketed, run_gas_sssp};
use cyclops_engine::IngressStats;
use cyclops_graph::{Dataset, Graph};
use cyclops_net::metrics::CounterSnapshot;
use cyclops_net::{ClusterSpec, SuperstepStats};
use cyclops_partition::{EdgeCutPartition, VertexCutPartition};
use std::time::Duration;

/// PageRank local/global error threshold used across the experiments.
pub const PR_EPSILON: f64 = 1e-4;
/// Tight PageRank threshold for steady-state comparisons (hybrid
/// replication): runs to full convergence (~50+ supersteps) so per-superstep
/// standing costs dominate one-shot setup costs, as in a production run.
pub const PR_CONVERGENCE_EPSILON: f64 = 1e-8;
/// PageRank superstep cap.
pub const PR_MAX_SUPERSTEPS: usize = 150;
/// Community-detection sweep cap.
pub const CD_SWEEPS: usize = 20;
/// ALS alternations.
pub const ALS_ITERS: usize = 3;
/// ALS latent dimension.
pub const ALS_DIM: usize = 8;
/// ALS regularization.
pub const ALS_LAMBDA: f64 = 0.05;
/// SSSP source vertex.
pub const SSSP_SOURCE: u32 = 0;

/// Experiment scale factor from `CYCLOPS_SCALE` (default 0.1). Datasets are
/// generated at `scale()` of their library-default size.
pub fn scale() -> f64 {
    std::env::var("CYCLOPS_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&f| f > 0.0)
        .unwrap_or(0.1)
}

/// The paper's in-house cluster: 6 machines. "48 workers" is `6 x 8`.
pub fn paper_cluster(workers: usize) -> ClusterSpec {
    assert!(
        workers.is_multiple_of(6),
        "the paper's cluster has 6 machines"
    );
    ClusterSpec::flat(6, workers / 6)
}

/// The CyclopsMT configuration matched to `workers` total threads
/// (the paper's best uses 2 receiver threads, §6.5).
pub fn paper_cluster_mt(workers: usize) -> ClusterSpec {
    assert!(workers.is_multiple_of(6));
    ClusterSpec::mt(6, workers / 6, 2.min(workers / 6).max(1))
}

/// One of the four evaluated algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// PageRank (pull).
    PageRank,
    /// Alternating Least Squares (pull).
    Als,
    /// Community Detection / label propagation (pull).
    Cd,
    /// Single-Source Shortest Path (push).
    Sssp,
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algo::PageRank => "PageRank",
            Algo::Als => "ALS",
            Algo::Cd => "CD",
            Algo::Sssp => "SSSP",
        })
    }
}

/// A dataset×algorithm pairing.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Input graph.
    pub dataset: Dataset,
    /// Algorithm the paper runs on it.
    pub algo: Algo,
}

/// The paper's seven workloads in Figure 9 order.
pub fn paper_workloads() -> Vec<Workload> {
    vec![
        Workload {
            dataset: Dataset::Amazon,
            algo: Algo::PageRank,
        },
        Workload {
            dataset: Dataset::GWeb,
            algo: Algo::PageRank,
        },
        Workload {
            dataset: Dataset::LJournal,
            algo: Algo::PageRank,
        },
        Workload {
            dataset: Dataset::Wiki,
            algo: Algo::PageRank,
        },
        Workload {
            dataset: Dataset::SynGl,
            algo: Algo::Als,
        },
        Workload {
            dataset: Dataset::Dblp,
            algo: Algo::Cd,
        },
        Workload {
            dataset: Dataset::RoadCa,
            algo: Algo::Sssp,
        },
    ]
}

/// Generates the workload's graph at `fraction` of library-default scale.
pub fn gen_graph(dataset: Dataset, fraction: f64) -> Graph {
    dataset.generate_scaled(fraction, dataset.default_seed())
}

/// ALS parameters matched to the SYN-GL stand-in at `fraction` scale.
pub fn als_params(fraction: f64) -> AlsParams {
    AlsParams {
        users: Dataset::SynGl.bipartite_users_at(fraction).unwrap(),
        dim: ALS_DIM,
        lambda: ALS_LAMBDA,
    }
}

/// Engine-agnostic outcome of one run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Superstep-loop wall time.
    pub elapsed: Duration,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Transport counters for the whole run.
    pub counters: CounterSnapshot,
    /// Per-superstep statistics.
    pub stats: Vec<SuperstepStats>,
    /// Replication factor (0 for BSP, which has no replicas).
    pub replication_factor: f64,
    /// Direct messages sent for cold boundary vertices (hybrid replication;
    /// 0 unless a Cyclops engine ran with a nonzero threshold).
    pub direct_messages: usize,
    /// Wire bytes of those direct messages.
    pub direct_bytes: usize,
    /// Ingress breakdown (Cyclops engines only).
    pub ingress: Option<IngressStats>,
    /// Final values as f64 when the algorithm is PageRank/SSSP (for
    /// convergence-quality comparisons).
    pub values_f64: Option<Vec<f64>>,
}

/// Runs `workload` on the Hama baseline.
pub fn run_on_hama(
    workload: &Workload,
    graph: &Graph,
    partition: &EdgeCutPartition,
    cluster: &ClusterSpec,
    fraction: f64,
) -> Outcome {
    match workload.algo {
        Algo::PageRank => {
            let r = run_bsp_pagerank(graph, partition, cluster, PR_EPSILON, PR_MAX_SUPERSTEPS);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: 0.0,
                direct_messages: 0,
                direct_bytes: 0,
                ingress: None,
                values_f64: Some(r.values),
            }
        }
        Algo::Als => {
            let r = run_bsp_als(graph, partition, cluster, als_params(fraction), ALS_ITERS);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: 0.0,
                direct_messages: 0,
                direct_bytes: 0,
                ingress: None,
                values_f64: None,
            }
        }
        Algo::Cd => {
            let r = run_bsp_cd(graph, partition, cluster, CD_SWEEPS + 1);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: 0.0,
                direct_messages: 0,
                direct_bytes: 0,
                ingress: None,
                values_f64: None,
            }
        }
        Algo::Sssp => {
            let r = run_bsp_sssp(graph, partition, cluster, SSSP_SOURCE, 100_000);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: 0.0,
                direct_messages: 0,
                direct_bytes: 0,
                ingress: None,
                values_f64: Some(r.values),
            }
        }
    }
}

/// Runs `workload` on Cyclops (flat) or CyclopsMT, depending on `cluster`.
pub fn run_on_cyclops(
    workload: &Workload,
    graph: &Graph,
    partition: &EdgeCutPartition,
    cluster: &ClusterSpec,
    fraction: f64,
) -> Outcome {
    match workload.algo {
        Algo::PageRank => {
            let r = run_cyclops_pagerank(graph, partition, cluster, PR_EPSILON, PR_MAX_SUPERSTEPS);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: r.replication_factor,
                direct_messages: r.direct_messages,
                direct_bytes: r.direct_bytes,
                ingress: Some(r.ingress),
                values_f64: Some(r.values),
            }
        }
        Algo::Als => {
            let r = run_cyclops_als(graph, partition, cluster, als_params(fraction), ALS_ITERS);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: r.replication_factor,
                direct_messages: r.direct_messages,
                direct_bytes: r.direct_bytes,
                ingress: Some(r.ingress),
                values_f64: None,
            }
        }
        Algo::Cd => {
            let r = run_cyclops_cd(graph, partition, cluster, CD_SWEEPS);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: r.replication_factor,
                direct_messages: r.direct_messages,
                direct_bytes: r.direct_bytes,
                ingress: Some(r.ingress),
                values_f64: None,
            }
        }
        Algo::Sssp => {
            // Bucketed delta-stepping with the auto-tuned width and the
            // deterministic drain order: the high-diameter road workload is
            // exactly what the fused-superstep scheduler exists for, and the
            // distances stay bitwise identical to the unbucketed run (the
            // Hama baseline above stays unbucketed, as in the paper).
            let r = run_cyclops_sssp_bucketed(
                graph,
                partition,
                cluster,
                SSSP_SOURCE,
                100_000,
                0.0,
                cyclops_net::BucketMode::Det,
                0,
                None,
            );
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: r.replication_factor,
                direct_messages: r.direct_messages,
                direct_bytes: r.direct_bytes,
                ingress: Some(r.ingress),
                values_f64: Some(r.values),
            }
        }
    }
}

/// [`run_on_cyclops`] with a hybrid replication degree threshold (PageRank
/// and SSSP — the workloads with tuned entry points; the hybrid ablations
/// run on those, so others panic rather than silently ignoring the
/// threshold).
///
/// `pr_epsilon` sets the PageRank convergence threshold (ignored by SSSP).
/// Hybrid comparisons should run both sides at
/// [`PR_CONVERGENCE_EPSILON`]: messaging a cold vertex trades a replica's
/// *standing* costs (its presence bit in every dense batch, all run) for a
/// one-shot direct frame, so the byte balance is a steady-state property —
/// the quick-mode [`PR_EPSILON`] stops after a handful of supersteps,
/// before the standing savings amortize the direct frame's fixed bytes.
pub fn run_on_cyclops_threshold(
    workload: &Workload,
    graph: &Graph,
    partition: &EdgeCutPartition,
    cluster: &ClusterSpec,
    threshold: u32,
    pr_epsilon: f64,
) -> Outcome {
    let from_result = |r: cyclops_engine::CyclopsResult<f64, f64>| Outcome {
        elapsed: r.elapsed,
        supersteps: r.supersteps,
        counters: r.counters,
        stats: r.stats,
        replication_factor: r.replication_factor,
        direct_messages: r.direct_messages,
        direct_bytes: r.direct_bytes,
        ingress: Some(r.ingress),
        values_f64: Some(r.values),
    };
    match workload.algo {
        Algo::PageRank => from_result(run_cyclops_pagerank_tuned(
            graph,
            partition,
            cluster,
            pr_epsilon,
            PR_MAX_SUPERSTEPS,
            cyclops_engine::Sched::default(),
            cyclops_engine::CyclopsConfig::default().sparse_cutoff,
            threshold,
            None,
        )),
        Algo::Sssp => from_result(run_cyclops_sssp_bucketed(
            graph,
            partition,
            cluster,
            SSSP_SOURCE,
            100_000,
            0.0,
            cyclops_net::BucketMode::Det,
            threshold,
            None,
        )),
        _ => panic!("hybrid replication runs are wired for PageRank and SSSP only"),
    }
}

/// Runs the PowerGraph baseline (PageRank and SSSP only — the algorithms
/// the paper compares on it).
pub fn run_on_gas(
    workload: &Workload,
    graph: &Graph,
    partition: &VertexCutPartition,
    cluster: &ClusterSpec,
) -> Outcome {
    match workload.algo {
        Algo::PageRank => {
            let r = run_gas_pagerank(graph, partition, cluster, PR_EPSILON, PR_MAX_SUPERSTEPS);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: r.replication_factor,
                direct_messages: 0,
                direct_bytes: 0,
                ingress: None,
                values_f64: Some(r.values),
            }
        }
        Algo::Sssp => {
            let r = run_gas_sssp(graph, partition, cluster, SSSP_SOURCE, 100_000);
            Outcome {
                elapsed: r.elapsed,
                supersteps: r.supersteps,
                counters: r.counters,
                stats: r.stats,
                replication_factor: r.replication_factor,
                direct_messages: 0,
                direct_bytes: 0,
                ingress: None,
                values_f64: Some(r.values),
            }
        }
        _ => panic!("the GAS baseline runs PageRank and SSSP only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cyclops_partition::{EdgeCutPartitioner, HashPartitioner};

    #[test]
    fn all_workloads_run_on_both_edge_cut_engines() {
        let fraction = 0.03;
        for w in paper_workloads() {
            let g = gen_graph(w.dataset, fraction);
            let cluster = ClusterSpec::flat(2, 2);
            let p = HashPartitioner.partition(&g, 4);
            let hama = run_on_hama(&w, &g, &p, &cluster, fraction);
            let cy = run_on_cyclops(&w, &g, &p, &cluster, fraction);
            assert!(hama.supersteps > 0, "{w:?}");
            assert!(cy.supersteps > 0, "{w:?}");
            if let (Some(a), Some(b)) = (&hama.values_f64, &cy.values_f64) {
                // The engines stop under different criteria (global vs local
                // error at PR_EPSILON), leaving an absolute gap bounded by
                // ~PR_EPSILON / (1 - damping); SSSP distances agree exactly
                // (both run to quiescence).
                for (x, y) in a.iter().zip(b) {
                    if x.is_finite() || y.is_finite() {
                        assert!((x - y).abs() < 2e-3, "{w:?}: {x} vs {y}");
                    }
                }
            }
        }
    }

    #[test]
    fn scale_env_parses() {
        // Default path (no env set in tests).
        assert!(scale() > 0.0);
    }

    #[test]
    fn paper_cluster_labels() {
        assert_eq!(paper_cluster(48).label(), "6x8x1");
        assert_eq!(paper_cluster_mt(48).label(), "6x1x8/2");
    }
}
