//! Space-Saving heavy-hitter sketch for hot-vertex attribution.
//!
//! Metwally, Agrawal, El Abbadi, "Efficient Computation of Frequent and
//! Top-k Elements in Data Streams" (ICDT 2005). The sketch keeps at most
//! `k` counters; a new key evicts the current minimum and inherits its
//! count (the classic over-estimate bound: every reported count is at most
//! `min_count` above the true weight). That bound is exactly what a skew
//! diagnosis needs — power-law hot vertices dominate their superstep by
//! orders of magnitude, far beyond the error term.
//!
//! The engines keep one sketch per compute thread (no sharing on the hot
//! path) and merge them in thread order at superstep end, so the merged
//! result is deterministic for a deterministic schedule. Merge folds every
//! entry of `other` into `self` with the same evict-min rule, which keeps
//! the merged sketch a valid Space-Saving summary of the concatenated
//! streams.

/// A bounded top-K heavy-hitter sketch over `(vertex, weight)` updates.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    k: usize,
    // Small k (8–64): linear scans beat a heap through cache locality.
    entries: Vec<(u32, u64)>,
}

impl SpaceSaving {
    /// Creates a sketch that tracks at most `k` keys. `k == 0` is allowed
    /// and makes every operation a no-op (the disabled path).
    pub fn new(k: usize) -> SpaceSaving {
        SpaceSaving {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Maximum number of tracked keys.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of currently tracked keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `weight` to `key`, evicting the minimum-count key when full.
    pub fn record(&mut self, key: u32, weight: u64) {
        if self.k == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 = e.1.saturating_add(weight);
            return;
        }
        if self.entries.len() < self.k {
            self.entries.push((key, weight));
            return;
        }
        // Evict the minimum (ties → lowest key, deterministically) and let
        // the newcomer inherit its count: the Space-Saving over-estimate.
        let (mi, _) = self
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .expect("sketch is full, k > 0");
        let inherited = self.entries[mi].1;
        self.entries[mi] = (key, inherited.saturating_add(weight));
    }

    /// Folds `other` into `self` with the same evict-min rule. Merging the
    /// per-thread sketches in thread order keeps the result deterministic.
    pub fn merge(&mut self, other: &SpaceSaving) {
        for &(key, weight) in &other.entries {
            self.record(key, weight);
        }
    }

    /// The tracked keys sorted by weight descending (ties → lowest key),
    /// the stable order every exposition path uses.
    pub fn top(&self) -> Vec<(u32, u64)> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Resets the sketch for the next superstep, keeping its capacity.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = SpaceSaving::new(4);
        s.record(7, 10);
        s.record(3, 5);
        s.record(7, 2);
        assert_eq!(s.top(), vec![(7, 12), (3, 5)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn eviction_inherits_minimum_count() {
        let mut s = SpaceSaving::new(2);
        s.record(1, 10);
        s.record(2, 3);
        s.record(3, 1); // evicts key 2 (min=3), inherits: 3 + 1 = 4
        let top = s.top();
        assert_eq!(top, vec![(1, 10), (3, 4)]);
    }

    #[test]
    fn heavy_hitter_survives_noise() {
        let mut s = SpaceSaving::new(4);
        for i in 0..1000u32 {
            s.record(100 + (i % 97), 1); // noise
            s.record(7, 50); // heavy hitter
        }
        let top = s.top();
        assert_eq!(top[0].0, 7);
        assert!(top[0].1 >= 50_000);
    }

    #[test]
    fn merge_in_fixed_order_is_deterministic() {
        let mut a1 = SpaceSaving::new(3);
        let mut b1 = SpaceSaving::new(3);
        for (k, w) in [(1u32, 5u64), (2, 9), (3, 2), (4, 7)] {
            a1.record(k, w);
        }
        for (k, w) in [(2u32, 4u64), (5, 6), (6, 1)] {
            b1.record(k, w);
        }
        let mut m1 = SpaceSaving::new(3);
        m1.merge(&a1);
        m1.merge(&b1);
        let mut m2 = SpaceSaving::new(3);
        m2.merge(&a1);
        m2.merge(&b1);
        assert_eq!(m1.top(), m2.top());
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut s = SpaceSaving::new(0);
        s.record(1, 100);
        assert!(s.is_empty());
        assert_eq!(s.top(), vec![]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = SpaceSaving::new(2);
        s.record(1, 1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 2);
        s.record(9, 9);
        assert_eq!(s.top(), vec![(9, 9)]);
    }

    #[test]
    fn ties_sort_by_lowest_key() {
        let mut s = SpaceSaving::new(4);
        s.record(9, 5);
        s.record(2, 5);
        s.record(4, 5);
        assert_eq!(s.top(), vec![(2, 5), (4, 5), (9, 5)]);
    }
}
