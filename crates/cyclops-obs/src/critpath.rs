//! Critical-path extraction and straggler attribution for barrier-structured
//! runs.
//!
//! A BSP superstep is a barrier-closed region: every worker runs its work
//! phases (PRS, CMP, SND — §3.5) and then waits at the barrier (SYN) until
//! the slowest worker arrives. Wall clock therefore decomposes as a *chain*
//! of superstep spans, each span set by the slowest worker of that
//! superstep — the run's **critical path**. Fig 10-style phase breakdowns
//! show that barrier wait is large; this module answers the follow-up
//! question they cannot: *whose* work made everyone else wait, and in
//! *which phase*.
//!
//! The model is deliberately exact rather than statistical. For one
//! superstep with per-worker samples `(parse, compute, send, sync)`:
//!
//! - a worker's **work** is `parse + compute + send`;
//! - its **span** is `work + sync` (in an ideal measurement every worker's
//!   span is equal — they all leave the barrier together);
//! - the superstep's **critical-path span** is the maximum span over its
//!   workers;
//! - the **straggler** is the worker with the maximum *work* — the last
//!   arriver at the barrier, the one every other worker's SYN time waits
//!   for. Its dominant work phase is the *cause* the wait is attributed to.
//!
//! Every worker's barrier wait is then attributed: `sync` is wait caused by
//! the straggler's dominant phase (for the straggler itself it is pure
//! barrier-protocol overhead), and the non-negative remainder
//! `span − work − sync` is measurement residual (clock jitter between
//! workers). By construction the invariant
//!
//! ```text
//! work + wait + residual == critical-path span      (for every worker)
//! ```
//!
//! holds *exactly* — the property the attribution proptest pins. All
//! arithmetic saturates, so adversarial inputs cannot wrap.

/// One worker's phase nanoseconds for one superstep — the engine-agnostic
/// projection of a trace record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSample {
    /// Worker id.
    pub worker: u64,
    /// PRS nanoseconds.
    pub parse_ns: u64,
    /// CMP nanoseconds.
    pub compute_ns: u64,
    /// SND nanoseconds.
    pub send_ns: u64,
    /// SYN (barrier wait) nanoseconds.
    pub sync_ns: u64,
}

impl PhaseSample {
    /// Work time: everything except barrier wait.
    pub fn work_ns(&self) -> u64 {
        self.parse_ns
            .saturating_add(self.compute_ns)
            .saturating_add(self.send_ns)
    }

    /// Total span: work plus barrier wait.
    pub fn span_ns(&self) -> u64 {
        self.work_ns().saturating_add(self.sync_ns)
    }

    /// The dominant work phase (the attribution target when this sample is
    /// the straggler). Ties break toward the earlier phase in superstep
    /// order (PRS, then CMP, then SND), deterministically.
    pub fn dominant_phase(&self) -> CpPhase {
        let mut best = (CpPhase::Parse, self.parse_ns);
        if self.compute_ns > best.1 {
            best = (CpPhase::Compute, self.compute_ns);
        }
        if self.send_ns > best.1 {
            best = (CpPhase::Send, self.send_ns);
        }
        best.0
    }
}

/// A superstep phase, as an attribution target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CpPhase {
    /// Message parsing (PRS).
    Parse,
    /// Vertex computation (CMP).
    Compute,
    /// Message sending (SND).
    Send,
    /// Barrier protocol itself (SYN) — the straggler's own wait.
    Sync,
}

impl CpPhase {
    /// Short lowercase name (`prs`/`cmp`/`snd`/`syn`), matching the trace
    /// reports.
    pub fn name(self) -> &'static str {
        match self {
            CpPhase::Parse => "prs",
            CpPhase::Compute => "cmp",
            CpPhase::Send => "snd",
            CpPhase::Sync => "syn",
        }
    }

    /// Uppercase paper-style name (`PRS`/`CMP`/`SND`/`SYN`).
    pub fn label(self) -> &'static str {
        match self {
            CpPhase::Parse => "PRS",
            CpPhase::Compute => "CMP",
            CpPhase::Send => "SND",
            CpPhase::Sync => "SYN",
        }
    }
}

/// One worker's exact decomposition of a superstep's critical-path span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerAttribution {
    /// Worker id.
    pub worker: u64,
    /// The worker's own work (PRS + CMP + SND).
    pub work_ns: u64,
    /// Barrier wait, attributed to the superstep's straggler (for the
    /// straggler itself: barrier-protocol overhead, attributed to SYN).
    pub wait_ns: u64,
    /// Non-negative measurement residual: `span − work − wait`. Zero in an
    /// ideal trace; clock jitter between workers otherwise.
    pub residual_ns: u64,
}

/// The critical-path analysis of one superstep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuperstepPath {
    /// Superstep index.
    pub superstep: u64,
    /// Critical-path span: the maximum per-worker span.
    pub span_ns: u64,
    /// The worker with the maximum span (ties → lowest id); the worker
    /// whose record *is* this link of the critical-path chain.
    pub critical_worker: u64,
    /// The worker with the maximum work (ties → lowest id): the last
    /// barrier arriver that every other worker waited for.
    pub straggler: u64,
    /// The straggler's dominant work phase — what the wait is blamed on.
    pub straggler_phase: CpPhase,
    /// The straggler's work time.
    pub straggler_work_ns: u64,
    /// Total barrier wait of the *other* workers, attributed to
    /// `(straggler, straggler_phase)`.
    pub caused_wait_ns: u64,
    /// The straggler's own barrier wait: protocol overhead, not caused by
    /// any worker's work.
    pub barrier_ns: u64,
    /// Exact per-worker decomposition; for every entry
    /// `work + wait + residual == span_ns`.
    pub workers: Vec<WorkerAttribution>,
}

/// One `(worker, phase)` line of the run-level straggler ranking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StragglerShare {
    /// The straggling worker.
    pub worker: u64,
    /// Its dominant phase in the supersteps it straggled.
    pub phase: CpPhase,
    /// Total barrier wait it caused in other workers.
    pub caused_wait_ns: u64,
    /// How many supersteps it was the straggler with this phase.
    pub supersteps: u64,
}

/// The critical path of a whole run: one [`SuperstepPath`] per superstep,
/// chained by the barriers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Per-superstep links, in superstep order.
    pub supersteps: Vec<SuperstepPath>,
    /// Run critical path: the sum of the per-superstep spans.
    pub total_span_ns: u64,
    /// Sum of every worker's work over all supersteps.
    pub total_work_ns: u64,
    /// Sum of every worker's attributed barrier wait.
    pub total_wait_ns: u64,
    /// Sum of every worker's measurement residual.
    pub total_residual_ns: u64,
}

impl CriticalPath {
    /// Analyzes grouped samples: one `(superstep, samples)` entry per
    /// superstep, each with one [`PhaseSample`] per reporting worker.
    /// Supersteps with no samples are skipped.
    pub fn analyze(supersteps: impl IntoIterator<Item = (u64, Vec<PhaseSample>)>) -> CriticalPath {
        let mut cp = CriticalPath::default();
        for (superstep, samples) in supersteps {
            if samples.is_empty() {
                continue;
            }
            let link = analyze_superstep(superstep, &samples);
            cp.total_span_ns = cp.total_span_ns.saturating_add(link.span_ns);
            for w in &link.workers {
                cp.total_work_ns = cp.total_work_ns.saturating_add(w.work_ns);
                cp.total_wait_ns = cp.total_wait_ns.saturating_add(w.wait_ns);
                cp.total_residual_ns = cp.total_residual_ns.saturating_add(w.residual_ns);
            }
            cp.supersteps.push(link);
        }
        cp
    }

    /// The run-level straggler ranking: total caused wait per
    /// `(worker, phase)`, sorted by caused wait descending (ties: worker
    /// then phase ascending, deterministically).
    pub fn straggler_ranking(&self) -> Vec<StragglerShare> {
        let mut by_cause: std::collections::BTreeMap<(u64, CpPhase), (u64, u64)> =
            std::collections::BTreeMap::new();
        for s in &self.supersteps {
            let e = by_cause
                .entry((s.straggler, s.straggler_phase))
                .or_default();
            e.0 = e.0.saturating_add(s.caused_wait_ns);
            e.1 += 1;
        }
        let mut out: Vec<StragglerShare> = by_cause
            .into_iter()
            .map(
                |((worker, phase), (caused_wait_ns, supersteps))| StragglerShare {
                    worker,
                    phase,
                    caused_wait_ns,
                    supersteps,
                },
            )
            .collect();
        out.sort_by(|a, b| {
            b.caused_wait_ns
                .cmp(&a.caused_wait_ns)
                .then(a.worker.cmp(&b.worker))
                .then(a.phase.cmp(&b.phase))
        });
        out
    }

    /// Total barrier wait caused across workers (excludes the stragglers'
    /// own protocol overhead).
    pub fn total_caused_wait_ns(&self) -> u64 {
        self.supersteps
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.caused_wait_ns))
    }
}

fn analyze_superstep(superstep: u64, samples: &[PhaseSample]) -> SuperstepPath {
    // max span (ties → lowest worker id) sets the critical-path span.
    let critical = samples
        .iter()
        .fold(None::<&PhaseSample>, |best, s| match best {
            None => Some(s),
            Some(b) => {
                if s.span_ns() > b.span_ns() || (s.span_ns() == b.span_ns() && s.worker < b.worker)
                {
                    Some(s)
                } else {
                    Some(b)
                }
            }
        })
        .expect("non-empty samples");
    let span_ns = critical.span_ns();
    // max work (ties → lowest worker id) names the straggler.
    let straggler = samples
        .iter()
        .fold(None::<&PhaseSample>, |best, s| match best {
            None => Some(s),
            Some(b) => {
                if s.work_ns() > b.work_ns() || (s.work_ns() == b.work_ns() && s.worker < b.worker)
                {
                    Some(s)
                } else {
                    Some(b)
                }
            }
        })
        .expect("non-empty samples");
    let straggler_id = straggler.worker;
    let straggler_phase = straggler.dominant_phase();

    let mut workers = Vec::with_capacity(samples.len());
    let mut caused_wait_ns = 0u64;
    let mut barrier_ns = 0u64;
    for s in samples {
        let work_ns = s.work_ns();
        // Clip the wait so `work + wait` never exceeds the sample's own
        // (saturating) span; residual then closes the gap to the superstep
        // span exactly, and both terms stay non-negative by construction.
        let wait_ns = s.span_ns().saturating_sub(work_ns);
        let residual_ns = span_ns.saturating_sub(s.span_ns());
        if s.worker == straggler_id {
            barrier_ns = barrier_ns.saturating_add(wait_ns);
        } else {
            caused_wait_ns = caused_wait_ns.saturating_add(wait_ns);
        }
        workers.push(WorkerAttribution {
            worker: s.worker,
            work_ns,
            wait_ns,
            residual_ns,
        });
    }
    SuperstepPath {
        superstep,
        span_ns,
        critical_worker: critical.worker,
        straggler: straggler_id,
        straggler_phase,
        straggler_work_ns: straggler.work_ns(),
        caused_wait_ns,
        barrier_ns,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(worker: u64, prs: u64, cmp: u64, snd: u64, syn: u64) -> PhaseSample {
        PhaseSample {
            worker,
            parse_ns: prs,
            compute_ns: cmp,
            send_ns: snd,
            sync_ns: syn,
        }
    }

    #[test]
    fn straggler_is_max_work_and_wait_is_attributed_to_its_dominant_phase() {
        // Worker 1 computes for 900 while 0 and 2 wait.
        let cp = CriticalPath::analyze([(
            0u64,
            vec![
                sample(0, 50, 100, 50, 800),
                sample(1, 50, 900, 50, 0),
                sample(2, 100, 100, 100, 700),
            ],
        )]);
        let s = &cp.supersteps[0];
        assert_eq!(s.straggler, 1);
        assert_eq!(s.straggler_phase, CpPhase::Compute);
        assert_eq!(s.straggler_work_ns, 1000);
        assert_eq!(s.span_ns, 1000); // all spans equal here
        assert_eq!(s.caused_wait_ns, 800 + 700);
        assert_eq!(s.barrier_ns, 0);
        assert_eq!(s.critical_worker, 0); // tie on span → lowest id
    }

    #[test]
    fn per_worker_decomposition_sums_exactly_to_the_span() {
        // Deliberately jittery: spans differ, so residuals are nonzero.
        let cp = CriticalPath::analyze([(
            3u64,
            vec![
                sample(0, 10, 20, 5, 100),
                sample(1, 80, 40, 10, 0),
                sample(2, 1, 2, 3, 4),
            ],
        )]);
        let s = &cp.supersteps[0];
        for w in &s.workers {
            assert_eq!(
                w.work_ns + w.wait_ns + w.residual_ns,
                s.span_ns,
                "worker {} must decompose the span exactly",
                w.worker
            );
        }
        assert_eq!(s.superstep, 3);
    }

    #[test]
    fn run_totals_chain_superstep_spans() {
        let cp = CriticalPath::analyze([
            (0u64, vec![sample(0, 0, 100, 0, 0), sample(1, 0, 40, 0, 60)]),
            (1u64, vec![sample(0, 0, 30, 0, 50), sample(1, 0, 80, 0, 0)]),
        ]);
        assert_eq!(cp.total_span_ns, 100 + 80);
        assert_eq!(cp.total_wait_ns, 60 + 50);
        assert_eq!(cp.total_caused_wait_ns(), 60 + 50);
        assert_eq!(cp.supersteps[0].straggler, 0);
        assert_eq!(cp.supersteps[1].straggler, 1);
    }

    #[test]
    fn ranking_accumulates_per_worker_phase_and_sorts_by_caused_wait() {
        let cp = CriticalPath::analyze([
            (0u64, vec![sample(0, 0, 100, 0, 0), sample(1, 0, 10, 0, 90)]),
            (
                1u64,
                vec![sample(0, 0, 200, 0, 0), sample(1, 0, 20, 0, 180)],
            ),
            (2u64, vec![sample(0, 0, 5, 0, 45), sample(1, 50, 0, 0, 0)]),
        ]);
        let rank = cp.straggler_ranking();
        assert_eq!(rank.len(), 2);
        assert_eq!(rank[0].worker, 0);
        assert_eq!(rank[0].phase, CpPhase::Compute);
        assert_eq!(rank[0].caused_wait_ns, 90 + 180);
        assert_eq!(rank[0].supersteps, 2);
        assert_eq!(rank[1].worker, 1);
        assert_eq!(rank[1].phase, CpPhase::Parse);
        assert_eq!(rank[1].caused_wait_ns, 45);
    }

    #[test]
    fn dominant_phase_ties_break_in_superstep_order() {
        assert_eq!(sample(0, 5, 5, 5, 0).dominant_phase(), CpPhase::Parse);
        assert_eq!(sample(0, 5, 9, 9, 0).dominant_phase(), CpPhase::Compute);
        assert_eq!(sample(0, 0, 0, 1, 0).dominant_phase(), CpPhase::Send);
    }

    #[test]
    fn saturating_arithmetic_survives_adversarial_inputs() {
        let cp = CriticalPath::analyze([(
            0u64,
            vec![
                sample(0, u64::MAX, u64::MAX, u64::MAX, u64::MAX),
                sample(1, 0, 0, 0, 0),
            ],
        )]);
        let s = &cp.supersteps[0];
        assert_eq!(s.span_ns, u64::MAX);
        for w in &s.workers {
            assert_eq!(
                w.work_ns
                    .saturating_add(w.wait_ns)
                    .saturating_add(w.residual_ns),
                s.span_ns
            );
        }
    }

    #[test]
    fn empty_supersteps_are_skipped() {
        let cp = CriticalPath::analyze([(0u64, vec![]), (1u64, vec![sample(0, 1, 2, 3, 4)])]);
        assert_eq!(cp.supersteps.len(), 1);
        assert_eq!(cp.supersteps[0].superstep, 1);
    }
}
