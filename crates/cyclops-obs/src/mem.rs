//! Memory observability: a tagged tracking allocator with per-component,
//! per-worker accounting.
//!
//! Cyclops' distributed immutable view trades memory for communication —
//! replicas cost resident bytes so that supersteps cost fewer messages —
//! yet every other instrument in this repo measures time or wire traffic.
//! This module measures the bytes. It has two halves:
//!
//! - [`MemAlloc`]: a `#[global_allocator]` wrapper over [`System`] that the
//!   binaries install unconditionally. **Disarmed** (the default) it is a
//!   pure pass-through: the only cost on the allocation path is a single
//!   relaxed `AtomicBool` load — no atomic read-modify-write, no locks, no
//!   TLS access (the `mem_tracking` criterion group pins this). **Armed**
//!   (via [`arm`], the CLI's `--mem`) every allocation is attributed to the
//!   active [`Component`] of the calling thread and added to live/peak
//!   counters, and the pointer is remembered in a sharded side table so the
//!   matching deallocation is charged back to the component that allocated
//!   it — even when the free happens under a different scope or thread.
//!   That exactness is what lets tests pin tracked bytes against the static
//!   audit `CyclopsPlan::memory_breakdown()`.
//! - [`MemScope`]: an RAII thread-local scope. Instrumented code brackets
//!   the construction of long-lived structures with
//!   `MemScope::enter(Component::…)`; engine threads additionally tag
//!   themselves with [`MemScope::worker`] so the accounting splits per
//!   worker. Scope switches are two `Cell` writes — no atomics — so scopes
//!   are cheap enough to leave on steady-state paths (the transport's send
//!   pool, inbox lanes).
//!
//! Samples taken at superstep barriers ([`sample`]) snapshot the counters
//! plus `/proc/self/status` VmRSS/VmHWM (gracefully absent off Linux) and
//! are appended to the trace as `{"mem":…}` JSONL lines *beside* the
//! deterministic records, exactly like flight spans: `trace-diff` never
//! sees them, so `--mem` runs stay trace-identical.
//!
//! Reentrancy: the tracker's own allocations (side-table growth, sample
//! vectors) are guarded by a thread-local flag and bypass accounting, so
//! the allocator never recurses into itself and never re-enters a shard
//! lock it already holds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// What a tracked allocation is *for*. Every long-lived structure in the
/// system picks one; anything unbracketed lands in [`Component::Other`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Component {
    /// The input graph's CSR arrays.
    Graph,
    /// The immutable-view plan: master lists, in-edge CSRs, activation
    /// fan-out, work-mass tables — everything except the replica and
    /// direct-slot tables below.
    Plan,
    /// Replica machinery: replica id lists, mirror fan-out, replica
    /// activation CSRs, and the replica publication slots.
    Replicas,
    /// Hybrid-replication direct-message machinery: slot source/target
    /// tables, sender-side destination CSRs, and the slot value tables.
    DirectSlots,
    /// The transport's pooled per-lane encode buffers and engine outboxes.
    SendPool,
    /// The transport's double-buffered inbox lanes.
    Inbox,
    /// Frontier structures (sharded frontiers, drain scratch).
    Frontier,
    /// Trace sink rings, flight rings, and sampling overhead.
    Trace,
    /// Everything not bracketed by a scope.
    Other,
}

/// Number of [`Component`] variants.
pub const NUM_COMPONENTS: usize = 9;

impl Component {
    /// Every component, in serialization order ([`Component::Other`] last).
    pub const ALL: [Component; NUM_COMPONENTS] = [
        Component::Graph,
        Component::Plan,
        Component::Replicas,
        Component::DirectSlots,
        Component::SendPool,
        Component::Inbox,
        Component::Frontier,
        Component::Trace,
        Component::Other,
    ];

    /// Short stable label used in JSONL lines and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            Component::Graph => "graph",
            Component::Plan => "plan",
            Component::Replicas => "replicas",
            Component::DirectSlots => "direct_slots",
            Component::SendPool => "send_pool",
            Component::Inbox => "inbox",
            Component::Frontier => "frontier",
            Component::Trace => "trace",
            Component::Other => "other",
        }
    }

    /// Inverse of [`Component::name`].
    pub fn parse(name: &str) -> Option<Component> {
        Component::ALL.into_iter().find(|c| c.name() == name)
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Worker slots in the accounting table: slot 0 holds allocations from
/// untagged threads (the main thread, loaders); slots `1..` hold workers
/// `0..`. Workers past the last slot fold into it — simulated clusters here
/// are far smaller.
const WORKER_SLOTS: usize = 65;
const CELLS: usize = WORKER_SLOTS * NUM_COMPONENTS;

/// Thread tag: `slot << 4 | component`. Component [`Component::Other`] in
/// slot 0 is the untagged default.
const DEFAULT_TAG: u16 = (Component::Other as u16) & 0xF;

thread_local! {
    static TAG: Cell<u16> = const { Cell::new(DEFAULT_TAG) };
    static IN_TRACKER: Cell<bool> = const { Cell::new(false) };
}

static ARMED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_I64: AtomicI64 = AtomicI64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

/// Live bytes per `(worker slot, component)` cell.
static LIVE: [AtomicI64; CELLS] = [ZERO_I64; CELLS];
/// High-water mark per cell, monotone under [`reset_peaks`].
static PEAK: [AtomicU64; CELLS] = [ZERO_U64; CELLS];
/// Process-wide live bytes per component (sum over slots, maintained
/// directly so its peak is a true process-wide high-water mark).
static TOTAL_LIVE: [AtomicI64; NUM_COMPONENTS] = [ZERO_I64; NUM_COMPONENTS];
/// Process-wide high-water mark per component.
static TOTAL_PEAK: [AtomicU64; NUM_COMPONENTS] = [ZERO_U64; NUM_COMPONENTS];

/// A trivial non-randomized hasher for the pointer side table: pointers are
/// already well distributed, and the std `RandomState` initializes lazy TLS
/// — which must never happen inside a global allocator (a thread tearing
/// down its TLS may still free memory).
#[derive(Default)]
struct PtrHasher(u64);

impl Hasher for PtrHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.0 = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type PtrMap = HashMap<usize, u16, BuildHasherDefault<PtrHasher>>;

const NUM_SHARDS: usize = 64;
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SHARD: Mutex<Option<PtrMap>> = Mutex::new(None);
/// ptr → tag side table, sharded to keep armed-mode contention low.
static SHARDS: [Mutex<Option<PtrMap>>; NUM_SHARDS] = [EMPTY_SHARD; NUM_SHARDS];

#[inline]
fn shard_of(ptr: usize) -> &'static Mutex<Option<PtrMap>> {
    let h = (ptr as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    &SHARDS[(h >> 58) as usize % NUM_SHARDS]
}

/// Arms the tracker. One-way: there is no disarm, so live counts can never
/// be skewed by frees of allocations the tracker stopped watching.
/// Idempotent; typically called once from `main` when `--mem` is present.
pub fn arm() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Whether the tracking allocator is currently attributing allocations.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

#[inline]
fn charge(tag: u16, delta: i64) {
    let slot = (tag >> 4) as usize;
    let comp = (tag & 0xF) as usize % NUM_COMPONENTS;
    let cell = slot.min(WORKER_SLOTS - 1) * NUM_COMPONENTS + comp;
    let live = LIVE[cell].fetch_add(delta, Ordering::Relaxed) + delta;
    let total = TOTAL_LIVE[comp].fetch_add(delta, Ordering::Relaxed) + delta;
    if delta > 0 {
        PEAK[cell].fetch_max(live.max(0) as u64, Ordering::Relaxed);
        TOTAL_PEAK[comp].fetch_max(total.max(0) as u64, Ordering::Relaxed);
    }
}

fn track_alloc(ptr: *mut u8, size: usize) {
    // `try_with` + reentrancy flag: never recurse (the side table itself
    // allocates) and never touch destroyed TLS during thread teardown.
    let _ = IN_TRACKER.try_with(|flag| {
        if flag.get() {
            return;
        }
        flag.set(true);
        let tag = TAG.try_with(Cell::get).unwrap_or(DEFAULT_TAG);
        charge(tag, size as i64);
        let mut shard = shard_of(ptr as usize)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard
            .get_or_insert_with(PtrMap::default)
            .insert(ptr as usize, tag);
        drop(shard);
        flag.set(false);
    });
}

fn track_dealloc(ptr: *mut u8, size: usize) {
    let _ = IN_TRACKER.try_with(|flag| {
        if flag.get() {
            return;
        }
        flag.set(true);
        let tag = {
            let mut shard = shard_of(ptr as usize)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            shard.as_mut().and_then(|m| m.remove(&(ptr as usize)))
        };
        // Absent ⇒ allocated before arming: charge nothing, keeping live
        // counts exact instead of drifting negative.
        if let Some(tag) = tag {
            charge(tag, -(size as i64));
        }
        flag.set(false);
    });
}

/// The tracking allocator. Install in a binary with
/// `#[global_allocator] static A: cyclops_obs::MemAlloc = cyclops_obs::MemAlloc;`
/// — a pure [`System`] pass-through until [`arm`] is called.
pub struct MemAlloc;

// SAFETY: delegates every operation to `System` unchanged; the tracking
// side effects never touch the returned memory.
unsafe impl GlobalAlloc for MemAlloc {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if ARMED.load(Ordering::Relaxed) && !ptr.is_null() {
            track_alloc(ptr, layout.size());
        }
        ptr
    }

    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if ARMED.load(Ordering::Relaxed) && !ptr.is_null() {
            track_alloc(ptr, layout.size());
        }
        ptr
    }

    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if ARMED.load(Ordering::Relaxed) {
            track_dealloc(ptr, layout.size());
        }
        System.dealloc(ptr, layout);
    }

    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if ARMED.load(Ordering::Relaxed) && !new_ptr.is_null() {
            track_dealloc(ptr, layout.size());
            track_alloc(new_ptr, new_size);
        }
        new_ptr
    }
}

/// RAII scope tag. While the guard lives, allocations on this thread are
/// attributed to the entered component (and, after [`MemScope::worker`], to
/// that worker's accounting slot). Guards nest; drop restores the previous
/// tag. Cost: two `Cell` writes, armed or not.
pub struct MemScope {
    prev: u16,
}

impl MemScope {
    /// Attributes subsequent allocations on this thread to `component`,
    /// keeping the current worker tag.
    #[inline]
    pub fn enter(component: Component) -> MemScope {
        let prev = TAG
            .try_with(|t| {
                let p = t.get();
                t.set((p & !0xF) | component.index() as u16);
                p
            })
            .unwrap_or(DEFAULT_TAG);
        MemScope { prev }
    }

    /// Tags this thread as belonging to worker `w` (call once at the top of
    /// a worker loop), keeping the current component.
    #[inline]
    pub fn worker(w: usize) -> MemScope {
        let slot = (w + 1).min(WORKER_SLOTS - 1) as u16;
        let prev = TAG
            .try_with(|t| {
                let p = t.get();
                t.set((slot << 4) | (p & 0xF));
                p
            })
            .unwrap_or(DEFAULT_TAG);
        MemScope { prev }
    }
}

impl Drop for MemScope {
    #[inline]
    fn drop(&mut self) {
        let _ = TAG.try_with(|t| t.set(self.prev));
    }
}

/// Process-wide live bytes currently attributed to `component`.
pub fn live_bytes(component: Component) -> i64 {
    TOTAL_LIVE[component.index()].load(Ordering::Relaxed)
}

/// Process-wide high-water mark of bytes attributed to `component`.
pub fn peak_bytes(component: Component) -> u64 {
    TOTAL_PEAK[component.index()].load(Ordering::Relaxed)
}

/// Live bytes attributed to (`worker`, `component`). Worker `None` reads
/// the untagged slot.
pub fn worker_live_bytes(worker: Option<usize>, component: Component) -> i64 {
    let slot = worker.map_or(0, |w| (w + 1).min(WORKER_SLOTS - 1));
    LIVE[slot * NUM_COMPONENTS + component.index()].load(Ordering::Relaxed)
}

/// High-water mark for (`worker`, `component`). Worker `None` reads the
/// untagged slot.
pub fn worker_peak_bytes(worker: Option<usize>, component: Component) -> u64 {
    let slot = worker.map_or(0, |w| (w + 1).min(WORKER_SLOTS - 1));
    PEAK[slot * NUM_COMPONENTS + component.index()].load(Ordering::Relaxed)
}

/// Collapses every high-water mark down to the current live value, so a
/// subsequent phase measures its own peaks. Test isolation helper.
pub fn reset_peaks() {
    for slot in 0..WORKER_SLOTS {
        for comp in 0..NUM_COMPONENTS {
            let cell = slot * NUM_COMPONENTS + comp;
            let live = LIVE[cell].load(Ordering::Relaxed).max(0) as u64;
            PEAK[cell].store(live, Ordering::Relaxed);
        }
    }
    for comp in 0..NUM_COMPONENTS {
        let live = TOTAL_LIVE[comp].load(Ordering::Relaxed).max(0) as u64;
        TOTAL_PEAK[comp].store(live, Ordering::Relaxed);
    }
}

/// One barrier-time snapshot of a worker's accounting slot (or, for
/// `worker == u32::MAX`, the untagged slot), destined for a `{"mem":…}`
/// trace line. `rss_kb`/`hwm_kb` are `0` when not sampled on this record or
/// unavailable on this platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemSample {
    /// Superstep the barrier closed.
    pub superstep: u64,
    /// Worker id, or `u32::MAX` for the untagged slot.
    pub worker: u32,
    /// Live bytes per component, [`Component::ALL`] order.
    pub live: [i64; NUM_COMPONENTS],
    /// Peak bytes per component, [`Component::ALL`] order.
    pub peak: [u64; NUM_COMPONENTS],
    /// `/proc/self/status` VmRSS in kB (0 = absent).
    pub rss_kb: u64,
    /// `/proc/self/status` VmHWM in kB (0 = absent).
    pub hwm_kb: u64,
}

#[allow(clippy::declare_interior_mutable_const)]
static SAMPLES: Mutex<Vec<MemSample>> = Mutex::new(Vec::new());

fn slot_snapshot(slot: usize) -> ([i64; NUM_COMPONENTS], [u64; NUM_COMPONENTS]) {
    let mut live = [0i64; NUM_COMPONENTS];
    let mut peak = [0u64; NUM_COMPONENTS];
    for comp in 0..NUM_COMPONENTS {
        live[comp] = LIVE[slot * NUM_COMPONENTS + comp].load(Ordering::Relaxed);
        peak[comp] = PEAK[slot * NUM_COMPONENTS + comp].load(Ordering::Relaxed);
    }
    (live, peak)
}

/// Samples worker `worker`'s accounting slot at a superstep barrier. No-op
/// while disarmed. Worker 0 additionally samples the untagged slot and the
/// process RSS, and refreshes the Prometheus gauges — once per superstep,
/// not once per worker. Called by the engines next to the superstep commit;
/// nondeterministic by nature, which is why samples live beside — never
/// inside — the deterministic trace records.
pub fn sample(superstep: u64, worker: u32) {
    if !armed() {
        return;
    }
    // The tracker's own bookkeeping is observability overhead: Trace.
    let _scope = MemScope::enter(Component::Trace);
    let slot = (worker as usize + 1).min(WORKER_SLOTS - 1);
    let (live, peak) = slot_snapshot(slot);
    let mut recs = Vec::with_capacity(2);
    let (mut rss_kb, mut hwm_kb) = (0, 0);
    if worker == 0 {
        let (rss, hwm) = read_vm_status();
        rss_kb = rss.unwrap_or(0);
        hwm_kb = hwm.unwrap_or(0);
        let (ulive, upeak) = slot_snapshot(0);
        recs.push(MemSample {
            superstep,
            worker: u32::MAX,
            live: ulive,
            peak: upeak,
            rss_kb: 0,
            hwm_kb: 0,
        });
        update_gauges(rss_kb);
    }
    recs.push(MemSample {
        superstep,
        worker,
        live,
        peak,
        rss_kb,
        hwm_kb,
    });
    SAMPLES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .extend(recs);
}

/// Drains every sample collected so far, in collection order. The CLI calls
/// this after the run's threads have joined and appends the samples to the
/// trace file.
pub fn take_samples() -> Vec<MemSample> {
    std::mem::take(&mut *SAMPLES.lock().unwrap_or_else(|e| e.into_inner()))
}

/// Refreshes the `cyclops_mem_{live,peak}_bytes{component}` and
/// `cyclops_rss_bytes` gauge families on the global registry, when one is
/// installed (`--prom` / `--listen`).
fn update_gauges(rss_kb: u64) {
    let Some(reg) = crate::registry::global() else {
        return;
    };
    for c in Component::ALL {
        reg.gauge("cyclops_mem_live_bytes", &[("component", c.name())])
            .set(live_bytes(c));
        reg.gauge("cyclops_mem_peak_bytes", &[("component", c.name())])
            .set(peak_bytes(c) as i64);
    }
    if rss_kb > 0 {
        reg.gauge("cyclops_rss_bytes", &[])
            .set(rss_kb as i64 * 1024);
    }
}

/// Parses `VmRSS` and `VmHWM` (kB) out of `/proc/self/status` text. Pure so
/// the fixture test can pin the format; either field gracefully absent on
/// kernels or platforms that do not report it.
pub fn parse_vm_status(text: &str) -> (Option<u64>, Option<u64>) {
    let field = |key: &str| -> Option<u64> {
        text.lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
    };
    (field("VmRSS:"), field("VmHWM:"))
}

/// Reads `(VmRSS kB, VmHWM kB)` from `/proc/self/status`. On non-Linux or
/// restricted environments the file is missing or unreadable and both come
/// back `None` — an absent gauge, never an error.
pub fn read_vm_status() -> (Option<u64>, Option<u64>) {
    match std::fs::read_to_string("/proc/self/status") {
        Ok(text) => parse_vm_status(&text),
        Err(_) => (None, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_names_round_trip() {
        for c in Component::ALL {
            assert_eq!(Component::parse(c.name()), Some(c));
        }
        assert_eq!(Component::parse("nope"), None);
        assert_eq!(Component::ALL.len(), NUM_COMPONENTS);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let read = || TAG.with(Cell::get);
        let base = read();
        {
            let _g = MemScope::enter(Component::Plan);
            assert_eq!(read() & 0xF, Component::Plan as u16);
            {
                let _w = MemScope::worker(3);
                assert_eq!(read() >> 4, 4);
                assert_eq!(read() & 0xF, Component::Plan as u16);
                let _i = MemScope::enter(Component::Inbox);
                assert_eq!(read() & 0xF, Component::Inbox as u16);
                assert_eq!(read() >> 4, 4);
            }
            assert_eq!(read() & 0xF, Component::Plan as u16);
        }
        assert_eq!(read(), base);
    }

    #[test]
    fn parse_vm_status_extracts_rss_and_hwm() {
        let fixture = "Name:\tcyclops\nUmask:\t0022\nState:\tR (running)\n\
                       VmPeak:\t  123456 kB\nVmSize:\t  120000 kB\n\
                       VmHWM:\t    4242 kB\nVmRSS:\t    4096 kB\n\
                       Threads:\t9\n";
        assert_eq!(parse_vm_status(fixture), (Some(4096), Some(4242)));
    }

    #[test]
    fn parse_vm_status_degrades_to_absent_fields() {
        // A restricted or non-Linux "status" has neither field: both absent,
        // no error. Partial exposure keeps whichever field exists.
        assert_eq!(parse_vm_status(""), (None, None));
        assert_eq!(parse_vm_status("Name:\tx\nState:\tS\n"), (None, None));
        assert_eq!(
            parse_vm_status("VmRSS:\t 777 kB\n"),
            (Some(777), None),
            "partial status keeps the present field"
        );
        assert_eq!(parse_vm_status("VmRSS:\tgarbage kB\n"), (None, None));
    }

    #[test]
    fn read_vm_status_never_errors() {
        // On Linux both fields exist; elsewhere both are None. Either way
        // the call must not panic — that's the graceful-fallback contract.
        let (rss, hwm) = read_vm_status();
        if cfg!(target_os = "linux") {
            assert!(rss.is_some() && hwm.is_some());
        }
        let _ = (rss, hwm);
    }

    // Accounting-path tests (charge/peak arithmetic) run against the cell
    // arrays directly: arming the process-global allocator inside the unit
    // test binary would tax every other test. The armed end-to-end behavior
    // is covered by the dedicated `mem_observability` integration binary,
    // which installs `MemAlloc` for real.
    #[test]
    fn charge_updates_live_and_peak_cells() {
        let tag = (7u16 << 4) | Component::Frontier as u16; // worker 6
        let before_live = worker_live_bytes(Some(6), Component::Frontier);
        let before_total = live_bytes(Component::Frontier);
        charge(tag, 1000);
        charge(tag, 500);
        charge(tag, -300);
        assert_eq!(
            worker_live_bytes(Some(6), Component::Frontier) - before_live,
            1200
        );
        assert!(worker_peak_bytes(Some(6), Component::Frontier) >= (before_live + 1500) as u64);
        assert_eq!(live_bytes(Component::Frontier) - before_total, 1200);
        assert!(peak_bytes(Component::Frontier) >= (before_total + 1500) as u64);
        charge(tag, -1200); // restore for other tests
    }

    #[test]
    fn oversized_worker_ids_fold_into_the_last_slot() {
        let w = WORKER_SLOTS + 40;
        let _g = MemScope::worker(w);
        let tag = TAG.with(Cell::get);
        assert_eq!((tag >> 4) as usize, WORKER_SLOTS - 1);
        let before = worker_live_bytes(Some(w), Component::Other);
        charge(tag, 64);
        assert_eq!(worker_live_bytes(Some(w), Component::Other) - before, 64);
        charge(tag, -64);
    }

    #[test]
    fn samples_are_nooped_while_disarmed() {
        // This binary never arms, so sample() must stay a no-op.
        sample(3, 0);
        assert!(take_samples().is_empty());
    }
}
