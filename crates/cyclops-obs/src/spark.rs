//! Unicode sparklines for terminal dashboards.

const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a bar-per-value sparkline, scaled to the maximum.
/// All-zero (or empty) input renders as the lowest bar per value.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                BARS[0]
            } else {
                // Scale into 0..=7; a nonzero value never renders as ▁-of-zero.
                let level = ((v as u128 * 7).div_ceil(max as u128)) as usize;
                BARS[level.min(7)]
            }
        })
        .collect()
}

/// Like [`sparkline`] but keeps at most the last `width` values.
pub fn sparkline_last(values: &[u64], width: usize) -> String {
    let start = values.len().saturating_sub(width);
    sparkline(&values[start..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_max() {
        let s = sparkline(&[0, 1, 7, 14]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 4);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[3], '█');
        assert!(('▁'..='█').contains(&chars[1]), "nonzero renders a bar");
        assert_eq!(sparkline(&[5, 5, 5]), "███");
    }

    #[test]
    fn zeros_and_empty_are_safe() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
    }

    #[test]
    fn last_window_truncates_front() {
        assert_eq!(sparkline_last(&[9, 9, 1, 1], 2), "██");
        assert_eq!(sparkline_last(&[1, 2], 10).chars().count(), 2);
    }
}
