//! Flight recorder: per-thread rings of timestamped span events.
//!
//! Per-(superstep, worker) aggregates say *how much* work and traffic a
//! superstep cost, but not *when inside the superstep* it happened — fused
//! bucket-drain rounds, dynamic chunk claims, and per-destination send
//! flushes are invisible in time. The flight recorder captures them as
//! [`SpanEvent`]s in fixed-capacity per-thread rings ([`SpanRing`]), cheap
//! enough to leave compiled in:
//!
//! - **Disabled** (no [`install_flight`] call): instrumented code resolves
//!   [`flight`] once at construction and holds `None`; every potential span
//!   costs exactly one resolved `Option` check — the same discipline as the
//!   metrics registry.
//! - **Enabled**: each instrumented thread owns one [`SpanRing`]; recording
//!   is two `Instant` reads plus a bounds-checked write into a preallocated
//!   buffer. No locks, no allocation past the ring's first lap. When a ring
//!   fills it overwrites its oldest events (and counts them), so a long run
//!   keeps its most recent window instead of failing.
//!
//! Rings are drained after the run's threads have joined ([
//! `FlightRecorder::drain`]) and exported by the CLI as extra JSONL lines
//! next to the superstep records, which `cyclops timeline --chrome` turns
//! into Chrome trace-event JSON. Timestamps are wall-clock nanoseconds
//! relative to the recorder's epoch: inherently nondeterministic, which is
//! why spans live beside — never inside — the deterministic trace records.

use std::cell::UnsafeCell;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-ring capacity in events. A [`SpanEvent`] is 48 bytes, so a
/// full ring costs ~3 MiB per thread while holding far more events than the
/// workloads here produce.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1 << 16;

/// What interval a span measures. The names are the short phase labels the
/// rest of the observability stack already uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// PRS: inbox drain + replica apply. `a` = superstep.
    Parse,
    /// CMP: the compute phase. `a` = superstep.
    Compute,
    /// SND: the send phase as a whole. `a` = superstep.
    Send,
    /// One barrier wait (the SYN cost as this thread saw it). `a` = epoch.
    Barrier,
    /// One fused bucket-drain relaxation round. `a` = bucket, `b` = round.
    Round,
    /// One dynamically claimed compute chunk. `a` = superstep, `b` = chunk
    /// index, `c` = vertices in the chunk.
    Chunk,
    /// One per-destination send flush. `a` = destination worker, `b` = wire
    /// bytes (0 intra-machine), `c` = wire mode (see [`SpanEvent::c`]).
    Flush,
}

impl SpanKind {
    /// Every kind, in serialization order.
    pub const ALL: [SpanKind; 7] = [
        SpanKind::Parse,
        SpanKind::Compute,
        SpanKind::Send,
        SpanKind::Barrier,
        SpanKind::Round,
        SpanKind::Chunk,
        SpanKind::Flush,
    ];

    /// Short stable label: `prs`, `cmp`, `snd`, `barrier`, `round`,
    /// `chunk`, `flush`.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Parse => "prs",
            SpanKind::Compute => "cmp",
            SpanKind::Send => "snd",
            SpanKind::Barrier => "barrier",
            SpanKind::Round => "round",
            SpanKind::Chunk => "chunk",
            SpanKind::Flush => "flush",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn parse(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One recorded span: a `[start, start + dur)` interval on one thread, with
/// kind-specific integer arguments (documented per [`SpanKind`] variant).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// What the interval measures.
    pub kind: SpanKind,
    /// Start, nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// First kind-specific argument (superstep / epoch / bucket / dest).
    pub a: u64,
    /// Second kind-specific argument (round / chunk index / wire bytes).
    pub b: u64,
    /// Third kind-specific argument. For [`SpanKind::Flush`]: the wire
    /// mode — 0 intra-machine (no serialization), 1 legacy, 2 sparse,
    /// 3 dense.
    pub c: u64,
}

struct RingBuf {
    buf: Vec<SpanEvent>,
    /// Oldest-entry index once the ring has wrapped.
    head: usize,
    dropped: u64,
}

/// A fixed-capacity single-writer ring of [`SpanEvent`]s, owned by one
/// instrumented thread. Created via [`FlightRecorder::ring`]; the recorder
/// keeps a handle for draining after the run.
pub struct SpanRing {
    worker: u32,
    thread: u32,
    epoch: Instant,
    cap: usize,
    inner: UnsafeCell<RingBuf>,
}

// SAFETY: `inner` is written only by the one thread that owns the ring
// (engines resolve a ring per worker thread; the transport one per sender
// lane, each lane having exactly one sending thread) and read only by
// `FlightRecorder::drain` after those threads have joined — the same
// single-writer discipline the superstep tracer's ring uses.
unsafe impl Sync for SpanRing {}
unsafe impl Send for SpanRing {}

impl SpanRing {
    fn new(worker: u32, thread: u32, epoch: Instant, cap: usize) -> Self {
        SpanRing {
            worker,
            thread,
            epoch,
            cap: cap.max(1),
            inner: UnsafeCell::new(RingBuf {
                buf: Vec::with_capacity(cap.clamp(1, 1024)),
                head: 0,
                dropped: 0,
            }),
        }
    }

    /// Worker id this ring belongs to (Chrome `pid`).
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Thread id within the worker (Chrome `tid`).
    pub fn thread(&self) -> u32 {
        self.thread
    }

    /// Nanoseconds since the recorder's epoch — capture before the work,
    /// pass to [`SpanRing::record`] after.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a span that started at `start_ns` (from [`SpanRing::now_ns`])
    /// and ends now.
    #[inline]
    pub fn record(&self, kind: SpanKind, start_ns: u64, a: u64, b: u64, c: u64) {
        let dur_ns = self.now_ns().saturating_sub(start_ns);
        self.push(SpanEvent {
            kind,
            start_ns,
            dur_ns,
            a,
            b,
            c,
        });
    }

    /// Appends one event, overwriting the oldest when full.
    #[inline]
    pub fn push(&self, ev: SpanEvent) {
        // SAFETY: single writer (see the Sync impl above).
        let rb = unsafe { &mut *self.inner.get() };
        if rb.buf.len() < self.cap {
            rb.buf.push(ev);
        } else {
            rb.buf[rb.head] = ev;
            rb.head = (rb.head + 1) % self.cap;
            rb.dropped += 1;
        }
    }

    /// Copies the ring's events in chronological order and clears it.
    /// Only called by `FlightRecorder::drain`, after writers have joined.
    fn take(&self) -> (Vec<SpanEvent>, u64) {
        // SAFETY: callers guarantee the owning thread has finished.
        let rb = unsafe { &mut *self.inner.get() };
        let mut out = Vec::with_capacity(rb.buf.len());
        out.extend_from_slice(&rb.buf[rb.head..]);
        out.extend_from_slice(&rb.buf[..rb.head]);
        let dropped = rb.dropped;
        rb.buf.clear();
        rb.head = 0;
        rb.dropped = 0;
        (out, dropped)
    }
}

/// One drained span tagged with the ring it came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightSpan {
    /// Worker id (Chrome `pid`).
    pub worker: u32,
    /// Thread id within the worker (Chrome `tid`).
    pub thread: u32,
    /// The span itself.
    pub event: SpanEvent,
}

/// Everything [`FlightRecorder::drain`] extracted: spans in start order
/// plus how many events ring wraparound overwrote.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightDump {
    /// All spans, sorted by `(start_ns, worker, thread)`.
    pub spans: Vec<FlightSpan>,
    /// Events overwritten by ring wraparound, across all rings.
    pub dropped: u64,
}

/// The flight recorder: hands out per-thread [`SpanRing`]s sharing one time
/// epoch, and drains them after the run.
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    rings: Mutex<Vec<Arc<SpanRing>>>,
}

impl FlightRecorder {
    /// A recorder whose rings hold `cap_per_ring` events each.
    pub fn new(cap_per_ring: usize) -> Self {
        FlightRecorder {
            epoch: Instant::now(),
            cap: cap_per_ring,
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Registers and returns a fresh ring for one instrumented thread
    /// (worker `worker`, thread `thread` within it). Call once per thread
    /// at construction/loop start — never on a hot path — and record
    /// through the returned handle. Multiple rings may share a
    /// `(worker, thread)` identity (e.g. the engine's ring and the
    /// transport's lane ring for the same thread); their spans merge at
    /// drain.
    pub fn ring(&self, worker: u32, thread: u32) -> Arc<SpanRing> {
        let ring = Arc::new(SpanRing::new(worker, thread, self.epoch, self.cap));
        self.rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        ring
    }

    /// Nanoseconds since this recorder's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Drains every ring: returns all spans sorted by start time and clears
    /// the rings. Must only be called after the instrumented threads have
    /// finished (engines join their workers before the CLI drains).
    pub fn drain(&self) -> FlightDump {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut spans = Vec::new();
        let mut dropped = 0;
        for ring in rings.iter() {
            let (events, d) = ring.take();
            dropped += d;
            spans.extend(events.into_iter().map(|event| FlightSpan {
                worker: ring.worker(),
                thread: ring.thread(),
                event,
            }));
        }
        spans.sort_by_key(|s| (s.event.start_ns, s.worker, s.thread));
        FlightDump { spans, dropped }
    }
}

static FLIGHT: OnceLock<FlightRecorder> = OnceLock::new();

/// Installs (or returns the already-installed) process-global flight
/// recorder with [`DEFAULT_FLIGHT_CAPACITY`] rings. Idempotent; the
/// recorder lives for the rest of the process, like the metrics registry.
pub fn install_flight() -> &'static FlightRecorder {
    FLIGHT.get_or_init(|| FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY))
}

/// The process-global flight recorder, or `None` when [`install_flight`]
/// was never called. Instrumented code checks this once at construction; a
/// `None` means every potential span costs one resolved `Option` check.
pub fn flight() -> Option<&'static FlightRecorder> {
    FLIGHT.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_durations_and_args() {
        let fr = FlightRecorder::new(16);
        let ring = fr.ring(2, 1);
        let t0 = ring.now_ns();
        ring.record(SpanKind::Flush, t0, 3, 4096, 2);
        let dump = fr.drain();
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.dropped, 0);
        let s = dump.spans[0];
        assert_eq!((s.worker, s.thread), (2, 1));
        assert_eq!(s.event.kind, SpanKind::Flush);
        assert_eq!((s.event.a, s.event.b, s.event.c), (3, 4096, 2));
        assert!(s.event.start_ns >= t0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let fr = FlightRecorder::new(4);
        let ring = fr.ring(0, 0);
        for i in 0..7u64 {
            ring.push(SpanEvent {
                kind: SpanKind::Chunk,
                start_ns: i,
                dur_ns: 1,
                a: i,
                b: 0,
                c: 0,
            });
        }
        let dump = fr.drain();
        assert_eq!(dump.dropped, 3);
        let kept: Vec<u64> = dump.spans.iter().map(|s| s.event.a).collect();
        assert_eq!(kept, vec![3, 4, 5, 6], "the most recent window survives");
    }

    #[test]
    fn drain_merges_rings_in_start_order_and_clears() {
        let fr = FlightRecorder::new(8);
        let a = fr.ring(0, 0);
        let b = fr.ring(1, 0);
        let mk = |start| SpanEvent {
            kind: SpanKind::Barrier,
            start_ns: start,
            dur_ns: 5,
            a: 0,
            b: 0,
            c: 0,
        };
        b.push(mk(20));
        a.push(mk(10));
        a.push(mk(30));
        let dump = fr.drain();
        let order: Vec<(u64, u32)> = dump
            .spans
            .iter()
            .map(|s| (s.event.start_ns, s.worker))
            .collect();
        assert_eq!(order, vec![(10, 0), (20, 1), (30, 0)]);
        assert!(fr.drain().spans.is_empty(), "drain clears the rings");
    }

    #[test]
    fn rings_accept_concurrent_writers_one_per_ring() {
        let fr = Arc::new(FlightRecorder::new(1024));
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let fr = Arc::clone(&fr);
                s.spawn(move || {
                    let ring = fr.ring(w, 0);
                    for i in 0..500u64 {
                        let t0 = ring.now_ns();
                        ring.record(SpanKind::Compute, t0, i, 0, 0);
                    }
                });
            }
        });
        let dump = fr.drain();
        assert_eq!(dump.spans.len(), 2000);
        assert_eq!(dump.dropped, 0);
    }

    #[test]
    fn kind_names_round_trip() {
        for k in SpanKind::ALL {
            assert_eq!(SpanKind::parse(k.name()), Some(k));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }

    #[test]
    fn global_flight_is_a_single_option_check_until_installed() {
        // Deliberately NOT installing here: other tests in this binary must
        // also observe the disabled path, and OnceLock is process-global.
        // The disabled contract itself — `flight()` is None and costs one
        // check — is what the criterion bench pins.
        let resolved = flight();
        if let Some(f) = resolved {
            // Another test (or bench harness) installed it; the handle must
            // still be usable.
            assert!(f.now_ns() < u64::MAX);
        }
    }
}
