//! Metrics substrate for the Cyclops reproduction: atomic counters and
//! gauges, log-linear (HDR-style) histograms, and Prometheus/JSON
//! exposition.
//!
//! The paper's evaluation is built from per-superstep telemetry (Fig 10's
//! phase breakdowns, Fig 10(2,3)'s active-vertex and message curves,
//! Table 2's memory behaviour), and message-reduction analyses such as
//! Pregel+ show that *distribution shape* — message-size skew, queue-depth
//! skew, barrier-wait tails — explains communication wins where totals
//! cannot. This crate provides the shape-capturing half of that telemetry:
//!
//! - [`LogLinearHistogram`]: base-2 buckets × 4 linear sub-buckets, so any
//!   reported quantile is within 12.5 % of the true value, with wait-free
//!   relaxed-atomic recording.
//! - [`MetricsRegistry`]: get-or-create named metrics with labels, plus a
//!   process-global instance ([`install_global`] / [`global`]) that
//!   instrumented code resolves **once** at construction — when absent the
//!   hot path pays a single `Option` check, the same discipline as the
//!   superstep tracer.
//! - [`render_prometheus`] / [`render_json`]: deterministic text
//!   exposition for scraping or golden-file testing.
//! - [`sparkline`]: terminal-dashboard rendering used by `cyclops metrics`
//!   and `cyclops top`.
//! - [`CriticalPath`]: barrier-structured critical-path extraction with
//!   exact straggler attribution (`cyclops why-slow`'s analysis core).
//! - [`SpaceSaving`]: bounded heavy-hitter sketch for hot-vertex top-K.
//! - [`MetricsServer`]: std-only HTTP listener serving `GET /metrics`
//!   (live Prometheus exposition) and `/healthz`.
//! - [`FlightRecorder`]: per-thread rings of timestamped span events
//!   (phase spans, barrier waits, fused bucket rounds, dynamic chunk
//!   claims, per-destination send flushes), drained after a run and
//!   exported as Chrome trace-event JSON by `cyclops timeline --chrome`.
//! - [`mem`]: a tagged tracking allocator ([`MemAlloc`]) with per-worker,
//!   per-[`Component`] live/peak accounting, scope-tagged via [`MemScope`]
//!   and sampled at superstep barriers into `{"mem":…}` trace lines.
//!
//! The crate is deliberately std-only and sits *below* `cyclops-net` in the
//! dependency order, so the transport and barrier layers can be
//! instrumented without a cycle.

#![warn(missing_docs)]

mod critpath;
mod expo;
mod flight;
mod hist;
pub mod mem;
mod registry;
mod serve;
mod spark;
mod topk;

pub use critpath::{
    CpPhase, CriticalPath, PhaseSample, StragglerShare, SuperstepPath, WorkerAttribution,
};
pub use expo::{render_json, render_prometheus};
pub use flight::{
    flight, install_flight, FlightDump, FlightRecorder, FlightSpan, SpanEvent, SpanKind, SpanRing,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use mem::{Component, MemAlloc, MemSample, MemScope, NUM_COMPONENTS};

pub use hist::{
    bucket_bounds, bucket_index, bucket_mid, HistogramSnapshot, LogLinearHistogram, NUM_BUCKETS,
};
pub use registry::{global, install_global, Counter, Gauge, Metric, MetricId, MetricsRegistry};
pub use serve::MetricsServer;
pub use spark::{sparkline, sparkline_last};
pub use topk::SpaceSaving;
