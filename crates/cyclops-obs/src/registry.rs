//! Named-metric registry with a process-global instance.
//!
//! Instrumented code resolves its metric handles **once** (at engine or
//! transport construction) via [`global`]; when no registry was installed
//! the handle is `None` and the hot path pays exactly one `Option` check —
//! the same two-`Option`-check discipline the superstep tracer uses. The
//! registration path (`counter`/`gauge`/`histogram`) takes a mutex, but it
//! runs O(metrics) times per run, never per message or per superstep.

use crate::hist::LogLinearHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.v.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A gauge holding a floating-point value (f64 bits in an atomic), for
/// ratios like the replication factor that an integer gauge would truncate.
#[derive(Debug, Default)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fully qualified metric identity: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `cyclops_phase_ns`.
    pub name: String,
    /// Label pairs, sorted by key for a deterministic identity.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders as `name` or `name{k="v",...}`.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// Monotonic counter.
    Counter(Arc<Counter>),
    /// Up/down gauge.
    Gauge(Arc<Gauge>),
    /// Floating-point gauge.
    FloatGauge(Arc<FloatGauge>),
    /// Log-linear histogram.
    Histogram(Arc<LogLinearHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::FloatGauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Number of registration shards. Registration hashes the metric identity
/// to one shard, so metric families registered concurrently (e.g. the
/// per-worker-pair comm counters, one per `(src, dst)`) don't serialize on
/// a single map lock. Exposition stays deterministic: [`MetricsRegistry::
/// for_each`] merges the shards and sorts by identity.
const REGISTRY_SHARDS: usize = 16;

/// A get-or-create registry of named metrics.
///
/// Ordered deterministically (by name, then labels) so exposition output is
/// stable — the golden-file test relies on that. Internally sharded by
/// identity hash so concurrent registration of large metric families
/// doesn't serialize on one lock.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<Mutex<BTreeMap<MetricId, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            shards: (0..REGISTRY_SHARDS)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
        }
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// FNV-1a over the identity; stable and dependency-free. Shard choice
    /// only affects lock distribution, never exposition order.
    fn shard_of(&self, id: &MetricId) -> &Mutex<BTreeMap<MetricId, Metric>> {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(id.name.as_bytes());
        for (k, v) in &id.labels {
            eat(k.as_bytes());
            eat(v.as_bytes());
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Returns the counter `name{labels}`, creating it on first use.
    ///
    /// Panics if the same identity was already registered as a different
    /// metric kind (a programming error, not a runtime condition).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Returns the gauge `name{labels}`, creating it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Returns the float gauge `name{labels}`, creating it on first use.
    pub fn float_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<FloatGauge> {
        match self.get_or_insert(name, labels, || {
            Metric::FloatGauge(Arc::new(FloatGauge::default()))
        }) {
            Metric::FloatGauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Returns the histogram `name{labels}`, creating it on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LogLinearHistogram> {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(LogLinearHistogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let id = MetricId::new(name, labels);
        // Recover from poisoning: the map holds only registration state (no
        // half-applied invariants — `entry` inserts atomically), so a panic
        // on another thread while it held the lock must not take the
        // process-global registry (and every later scrape) down with it.
        let shard = self.shard_of(&id);
        let mut metrics = shard.lock().unwrap_or_else(|e| e.into_inner());
        metrics.entry(id).or_insert_with(make).clone()
    }

    /// Visits every metric in deterministic order (by name, then labels —
    /// independent of shard assignment). Entries are snapshotted out of the
    /// shard locks first, so the visitor runs lock-free and a panicking
    /// visitor cannot poison the registry.
    pub fn for_each(&self, mut f: impl FnMut(&MetricId, &Metric)) {
        let mut all: Vec<(MetricId, Metric)> = Vec::new();
        for shard in &self.shards {
            let metrics = shard.lock().unwrap_or_else(|e| e.into_inner());
            all.extend(metrics.iter().map(|(id, m)| (id.clone(), m.clone())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        for (id, m) in &all {
            f(id, m);
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// Installs (or returns the already-installed) process-global registry.
/// Idempotent; the registry lives for the rest of the process.
pub fn install_global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// The process-global registry, or `None` when [`install_global`] was never
/// called. Instrumented code checks this once at construction time; a
/// `None` means the run pays no metric overhead beyond that check.
pub fn global() -> Option<&'static MetricsRegistry> {
    GLOBAL.get()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instance() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", &[("engine", "bsp")]);
        let b = r.counter("x_total", &[("engine", "bsp")]);
        a.inc(3);
        b.inc(4);
        assert_eq!(a.get(), 7);
        assert_eq!(r.len(), 1);
        // Different labels → different metric.
        let c = r.counter("x_total", &[("engine", "gas")]);
        c.inc(1);
        assert_eq!(c.get(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = MetricsRegistry::new();
        let a = r.gauge("g", &[("a", "1"), ("b", "2")]);
        let b = r.gauge("g", &[("b", "2"), ("a", "1")]);
        a.set(9);
        assert_eq!(b.get(), 9);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("m", &[]);
        r.gauge("m", &[]);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::default();
        g.set(10);
        g.add(-25);
        assert_eq!(g.get(), -15);
    }

    #[test]
    fn poisoned_registry_still_registers_and_scrapes() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        r.counter("before_total", &[]).inc(1);
        // A visitor that panics on another thread must not break the
        // registry. (Since sharding, for_each snapshots the entries before
        // visiting, so the panic can't even poison a shard lock — and the
        // lock paths still recover via `into_inner` if one ever is.)
        let r2 = std::sync::Arc::clone(&r);
        let res = std::thread::spawn(move || {
            r2.for_each(|_, _| panic!("visitor panic during a scrape"));
        })
        .join();
        assert!(res.is_err(), "the visitor should have panicked");
        // Registration, scraping and len must all survive the panic.
        assert_eq!(r.len(), 1);
        let c = r.counter("after_total", &[("engine", "bsp")]);
        c.inc(5);
        assert_eq!(r.len(), 2);
        let mut seen = Vec::new();
        r.for_each(|id, _| seen.push(id.render()));
        assert_eq!(seen, vec!["after_total{engine=\"bsp\"}", "before_total"]);
        assert_eq!(r.counter("after_total", &[("engine", "bsp")]).get(), 5);
    }

    #[test]
    fn sharded_registration_is_concurrent_safe_and_scrapes_in_sorted_order() {
        // A per-worker-pair family registered from many threads at once —
        // the workload the sharding exists for. Every identity must land
        // exactly once and exposition order must stay globally sorted,
        // independent of shard assignment.
        let r = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for src in 0..8u32 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    let src = src.to_string();
                    for dst in 0..8u32 {
                        r.counter(
                            "comm_pair_bytes",
                            &[("src", &src), ("dst", &dst.to_string())],
                        )
                        .inc(1);
                    }
                });
            }
        });
        assert_eq!(r.len(), 64);
        let mut seen = Vec::new();
        r.for_each(|id, _| seen.push(id.clone()));
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted, "for_each must visit in sorted identity order");
        assert_eq!(
            r.counter("comm_pair_bytes", &[("dst", "3"), ("src", "5")])
                .get(),
            1
        );
    }

    #[test]
    fn metric_id_renders_prometheus_style() {
        let id = MetricId::new("m_total", &[("b", "2"), ("a", "1")]);
        assert_eq!(id.render(), "m_total{a=\"1\",b=\"2\"}");
        assert_eq!(MetricId::new("bare", &[]).render(), "bare");
    }
}
