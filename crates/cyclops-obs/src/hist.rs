//! Log-linear (HDR-style) histograms over `u64` values.
//!
//! The bucket layout is base-2 exponential with 4 linear sub-buckets per
//! octave: values below 4 get exact unit buckets; a value `v >= 4` with
//! highest set bit `e` lands in one of four sub-buckets of width `2^(e-2)`.
//! Reporting the bucket *midpoint* therefore bounds the relative error of
//! any reconstructed value (percentiles included) by half a bucket width
//! over the bucket's lower edge: `(2^(e-2)/2) / 2^e = 1/8 = 12.5 %`.
//!
//! All mutation is relaxed atomics — recording from many worker threads is
//! wait-free and never takes a lock, the same discipline as the superstep
//! tracer. Reads (snapshots) are statistics, not synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per octave (power of two).
const SUB_BUCKETS: usize = 4;
/// log2(SUB_BUCKETS).
const SUB_BUCKET_BITS: u32 = 2;
/// Total buckets: 4 unit buckets for v < 4, then 4 sub-buckets for each of
/// the 62 octaves `[2^2, 2^3) .. [2^63, 2^64)`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + 62 * SUB_BUCKETS;

/// Bucket index for a value. Exact for `v < 4`; log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    // Highest set bit position; v >= 4 so e >= 2.
    let e = 63 - v.leading_zeros();
    let sub = ((v >> (e - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (e as usize - 1) * SUB_BUCKETS + sub
}

/// Inclusive lower and exclusive upper bound of bucket `i` (the upper bound
/// saturates at `u64::MAX` for the top bucket).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index out of range");
    if i < SUB_BUCKETS {
        return (i as u64, i as u64 + 1);
    }
    let e = (i / SUB_BUCKETS + 1) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    let width = 1u64 << (e - SUB_BUCKET_BITS);
    let low = (SUB_BUCKETS as u64 + sub) << (e - SUB_BUCKET_BITS);
    (low, low.saturating_add(width))
}

/// Midpoint of bucket `i` — the value reported for anything recorded there.
pub fn bucket_mid(i: usize) -> u64 {
    let (low, _) = bucket_bounds(i);
    if i < SUB_BUCKETS {
        return low;
    }
    let e = (i / SUB_BUCKETS + 1) as u32;
    low + (1u64 << (e - SUB_BUCKET_BITS)) / 2
}

/// A concurrent log-linear histogram with atomic bucket counts plus exact
/// count/sum/min/max side-channels.
#[derive(Debug)]
pub struct LogLinearHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinearHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogLinearHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` observations of `v` (one bucket update regardless of `n`).
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-number snapshot of a [`LogLinearHistogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`q` in `[0, 1]`) reported as a bucket midpoint,
    /// clamped into `[min, max]`. Uses the nearest-rank convention
    /// (`rank = ceil(q * count)`). Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Exact arithmetic mean of the recorded values (not bucket-quantised).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
            assert_eq!(bucket_mid(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_tile_the_u64_line() {
        // Every bucket starts where the previous one ends.
        for i in 1..NUM_BUCKETS {
            let (_, prev_high) = bucket_bounds(i - 1);
            let (low, high) = bucket_bounds(i);
            assert_eq!(prev_high, low, "gap before bucket {i}");
            assert!(high > low);
        }
        assert_eq!(bucket_bounds(0).0, 0);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn values_land_in_their_bucket() {
        let probe = [
            0u64,
            1,
            3,
            4,
            5,
            7,
            8,
            9,
            15,
            16,
            1000,
            4096,
            4097,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probe {
            let i = bucket_index(v);
            let (low, high) = bucket_bounds(i);
            assert!(low <= v, "v={v} below bucket {i} [{low},{high})");
            assert!(
                v < high || high == u64::MAX,
                "v={v} above bucket {i} [{low},{high})"
            );
        }
    }

    #[test]
    fn midpoint_relative_error_is_bounded() {
        // For any v >= 1, |mid - v| / v <= 12.5 %.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3, v + v / 2] {
                let mid = bucket_mid(bucket_index(probe));
                let err = (mid as f64 - probe as f64).abs() / probe as f64;
                assert!(err <= 0.125 + 1e-12, "v={probe} mid={mid} err={err}");
            }
            v = v.saturating_mul(2);
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let h = LogLinearHistogram::new();
        assert!(h.snapshot().is_empty());
        h.record(10);
        h.record(20);
        h.record_n(5, 3);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 45);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 20);
        assert!((s.mean() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_match_exact_within_bucket_error() {
        let h = LogLinearHistogram::new();
        let mut values: Vec<u64> = (0..10_000u64).map(|i| (i * 7919) % 100_000 + 1).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        for q in [0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let approx = s.percentile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 0.125,
                "q={q} exact={exact} approx={approx} err={err}"
            );
        }
        assert!(s.percentile(1.0) <= s.max);
    }

    #[test]
    fn percentile_of_constant_is_exact_enough() {
        let h = LogLinearHistogram::new();
        h.record_n(1000, 100);
        let s = h.snapshot();
        // Clamped into [min, max] so a constant stream reports exactly.
        assert_eq!(s.percentile(0.5), 1000);
        assert_eq!(s.percentile(0.99), 1000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LogLinearHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 40_000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 39_999);
    }
}
