//! Exposition: Prometheus text format and JSON snapshots.
//!
//! Both renderers walk the registry in its deterministic order, so output
//! for a fixed set of recordings is byte-stable (golden-file testable).
//! Histograms render in the cumulative-`le` Prometheus convention, emitting
//! only buckets whose cumulative count changed plus the trailing `+Inf`.

use crate::hist::{bucket_bounds, HistogramSnapshot};
use crate::registry::{Metric, MetricId, MetricsRegistry};
use std::fmt::Write as _;

/// Renders the registry in the Prometheus text exposition format.
pub fn render_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_name = String::new();
    reg.for_each(|id, metric| {
        if id.name != last_name {
            let _ = writeln!(out, "# TYPE {} {}", id.name, type_of(metric));
            last_name = id.name.clone();
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{} {}", id.render(), c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{} {}", id.render(), g.get());
            }
            Metric::FloatGauge(g) => {
                let _ = writeln!(out, "{} {}", id.render(), g.get());
            }
            Metric::Histogram(h) => {
                render_histogram(&mut out, id, &h.snapshot());
            }
        }
    });
    out
}

fn type_of(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) | Metric::FloatGauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

fn render_histogram(out: &mut String, id: &MetricId, s: &HistogramSnapshot) {
    let mut cum = 0u64;
    for (i, &c) in s.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        // Buckets are [low, high) over integers, so `le = high - 1` is the
        // inclusive upper bound Prometheus expects.
        let le = bucket_bounds(i).1 - 1;
        let _ = writeln!(out, "{} {}", with_le(id, &le.to_string()), cum);
    }
    let _ = writeln!(out, "{} {}", with_le(id, "+Inf"), s.count);
    let _ = writeln!(out, "{}_sum{} {}", id.name, labels_only(id), s.sum);
    let _ = writeln!(out, "{}_count{} {}", id.name, labels_only(id), s.count);
}

fn with_le(id: &MetricId, le: &str) -> String {
    let mut pairs: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    pairs.push(format!("le=\"{le}\""));
    format!("{}_bucket{{{}}}", id.name, pairs.join(","))
}

fn labels_only(id: &MetricId) -> String {
    if id.labels.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

/// Renders the registry as a JSON array of metric objects. Histograms carry
/// `count`, `sum`, `min`, `max`, and midpoint-quantised `p50`/`p90`/`p99`.
pub fn render_json(reg: &MetricsRegistry) -> String {
    let mut out = String::from("[");
    let mut first = true;
    reg.for_each(|id, metric| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  {");
        let _ = write!(out, "\"name\":\"{}\",\"labels\":{{", id.name);
        for (i, (k, v)) in id.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":\"{v}\"");
        }
        out.push_str("},");
        match metric {
            Metric::Counter(c) => {
                let _ = write!(out, "\"type\":\"counter\",\"value\":{}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = write!(out, "\"type\":\"gauge\",\"value\":{}", g.get());
            }
            Metric::FloatGauge(g) => {
                let _ = write!(out, "\"type\":\"gauge\",\"value\":{}", g.get());
            }
            Metric::Histogram(h) => {
                let s = h.snapshot();
                let _ = write!(
                    out,
                    "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{}",
                    s.count,
                    s.sum,
                    s.min,
                    s.max,
                    s.percentile(0.50),
                    s.percentile(0.90),
                    s.percentile(0.99)
                );
            }
        }
        out.push('}');
    });
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("cyclops_messages_total", &[("mode", "sharded")])
            .inc(42);
        r.gauge("cyclops_run_supersteps", &[("engine", "cyclops")])
            .set(7);
        let h = r.histogram(
            "cyclops_phase_ns",
            &[("engine", "cyclops"), ("phase", "cmp")],
        );
        h.record(3);
        h.record(100);
        h.record(100);
        r
    }

    #[test]
    fn prometheus_text_has_types_values_and_cumulative_buckets() {
        let text = render_prometheus(&sample_registry());
        assert!(text.contains("# TYPE cyclops_messages_total counter"));
        assert!(text.contains("cyclops_messages_total{mode=\"sharded\"} 42"));
        assert!(text.contains("# TYPE cyclops_run_supersteps gauge"));
        assert!(text.contains("cyclops_run_supersteps{engine=\"cyclops\"} 7"));
        assert!(text.contains("# TYPE cyclops_phase_ns histogram"));
        // 3 lands in the unit bucket le="3"; the two 100s share one bucket
        // and the cumulative count reaches 3 there.
        assert!(text.contains("phase=\"cmp\",le=\"3\"} 1"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.contains("cyclops_phase_ns_sum{engine=\"cyclops\",phase=\"cmp\"} 203"));
        assert!(text.contains("cyclops_phase_ns_count{engine=\"cyclops\",phase=\"cmp\"} 3"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("h", &[]);
        h.record(1);
        h.record(2);
        h.record(1000);
        let text = render_prometheus(&r);
        let lines: Vec<&str> = text.lines().filter(|l| l.contains("h_bucket")).collect();
        assert_eq!(lines.len(), 4); // 3 distinct buckets + +Inf
        assert!(lines[0].ends_with(" 1"));
        assert!(lines[1].ends_with(" 2"));
        assert!(lines[2].ends_with(" 3"));
        assert!(lines[3].contains("+Inf") && lines[3].ends_with(" 3"));
    }

    #[test]
    fn float_gauge_renders_fractional_values() {
        let r = MetricsRegistry::new();
        r.float_gauge("cyclops_replication_factor", &[("mode", "hybrid")])
            .set(1.375);
        let text = render_prometheus(&r);
        assert!(text.contains("# TYPE cyclops_replication_factor gauge"));
        assert!(text.contains("cyclops_replication_factor{mode=\"hybrid\"} 1.375"));
        let json = render_json(&r);
        assert!(json.contains("\"type\":\"gauge\",\"value\":1.375"));
    }

    #[test]
    fn json_snapshot_is_parseable_shape() {
        let json = render_json(&sample_registry());
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"type\":\"counter\",\"value\":42"));
        assert!(json.contains("\"type\":\"gauge\",\"value\":7"));
        assert!(json.contains("\"type\":\"histogram\",\"count\":3,\"sum\":203"));
        assert!(json.contains("\"p50\":"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_prometheus(&sample_registry());
        let b = render_prometheus(&sample_registry());
        assert_eq!(a, b);
    }
}
