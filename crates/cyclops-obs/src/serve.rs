//! Std-only HTTP scrape endpoint for the metrics registry.
//!
//! `MetricsServer::start` binds a `std::net::TcpListener` and serves
//! `GET /metrics` (the live [`render_prometheus`](crate::render_prometheus)
//! exposition of the registry at request time) and `GET /healthz` from one
//! background thread. No HTTP library: the vendored-deps-only constraint
//! rules out hyper/tiny_http, and a Prometheus scraper needs nothing beyond
//! a status line, `Content-Type`, `Content-Length`, and
//! `Connection: close`.
//!
//! Shutdown is cooperative: [`MetricsServer::shutdown`] sets a flag and
//! self-connects to unblock `accept()`, then joins the thread. Dropping the
//! server shuts it down too.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::expo::render_prometheus;
use crate::registry::MetricsRegistry;

/// A background HTTP server exposing one registry at `/metrics`.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free port)
    /// and starts serving `registry` on a background thread.
    pub fn start(
        addr: impl ToSocketAddrs,
        registry: &'static MetricsRegistry,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cyclops-metrics-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Scrapes are rare and tiny; serving inline keeps the
                    // server single-threaded and allocation-light.
                    let _ = serve_one(stream, registry);
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock accept(); a failed connect means the listener is
            // already gone, which is fine.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    // Read until the end of the request head; request bodies are ignored
    // (GET has none). Cap the head at 8 KiB — a scraper's is ~100 bytes.
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4",
            render_prometheus(registry),
        ),
        ("GET", "/healthz") => ("200 OK", "text/plain; version=0.0.4", "ok\n".to_string()),
        ("GET", _) => ("404 Not Found", "text/plain", "not found\n".to_string()),
        _ => (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn static_registry() -> &'static MetricsRegistry {
        Box::leak(Box::new(MetricsRegistry::new()))
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn metrics_endpoint_serves_live_exposition() {
        let reg = static_registry();
        let counter = reg.counter("test_requests", &[("path", "/metrics")]);
        let mut server = MetricsServer::start("127.0.0.1:0", reg).expect("start");
        counter.inc(3);
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "head: {head}");
        assert_eq!(body, render_prometheus(reg));
        assert!(body.contains("test_requests{path=\"/metrics\"} 3"));
        // A second scrape sees updated values: the exposition is live.
        counter.inc(1);
        let (_, body2) = get(server.addr(), "/metrics");
        assert!(body2.contains("test_requests{path=\"/metrics\"} 4"));
        server.shutdown();
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let mut server = MetricsServer::start("127.0.0.1:0", static_registry()).expect("start");
        let (head, body) = get(server.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, "ok\n");
        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        server.shutdown();
    }

    #[test]
    fn content_length_matches_body() {
        let reg = static_registry();
        reg.gauge("test_gauge", &[]).set(42);
        let mut server = MetricsServer::start("127.0.0.1:0", reg).expect("start");
        let (head, body) = get(server.addr(), "/metrics");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("content-length header")
            .parse()
            .expect("numeric length");
        assert_eq!(len, body.len());
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut server = MetricsServer::start("127.0.0.1:0", static_registry()).expect("start");
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is released: a fresh bind on the same addr succeeds.
        let relisten = TcpListener::bind(addr);
        assert!(relisten.is_ok(), "port should be free after shutdown");
    }
}
