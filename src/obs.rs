//! Run-level observability: phase-latency summaries, sparkline tables, and
//! a live trace follower.
//!
//! This module turns superstep traces (see [`cyclops_net::trace`]) into the
//! human-facing reports behind `cyclops metrics` (post-hoc summary of a
//! trace file) and `cyclops top` (live dashboard tailing a *streaming*
//! trace while the run is still writing it). Latencies are accumulated into
//! the same log-linear histograms the engines feed
//! ([`cyclops_obs::LogLinearHistogram`], ≤ 12.5 % relative bucket error),
//! so quantiles here and quantiles from the in-process registry agree.

pub use cyclops_obs::{
    flight, global, install_flight, install_global, mem, render_json, render_prometheus, sparkline,
    sparkline_last, Component, Counter, CpPhase, CriticalPath, FlightDump, FlightRecorder, Gauge,
    HistogramSnapshot, LogLinearHistogram, MemAlloc, MetricsRegistry, MetricsServer, PhaseSample,
    SpaceSaving, NUM_COMPONENTS,
};

use cyclops_net::trace::{
    parse_meta_line, parse_record_line, RunTrace, SpanRecord, TraceMeta, TraceRecord,
};
use cyclops_obs::SpanKind;
use std::fmt::Write as _;
use std::io::{Read, Seek, SeekFrom};

/// The four phase names, in the paper's order (§3.5).
pub const PHASES: [&str; 4] = ["prs", "cmp", "snd", "syn"];

/// Streaming accumulator over trace records: per-phase latency histograms
/// plus compact per-superstep aggregates for sparklines. Feed it records
/// with [`TraceStats::add`] — out of order is fine — and render at any
/// point; `cyclops top` keeps one alive across polls.
#[derive(Default)]
pub struct TraceStats {
    /// Phase latency histograms, indexed like [`PHASES`].
    hists: [LogLinearHistogram; 4],
    /// Per-superstep totals, indexed by superstep (summed over workers).
    supersteps: Vec<SuperstepAgg>,
    /// Records absorbed so far.
    records: u64,
}

/// Per-superstep aggregate over workers.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuperstepAgg {
    /// Sum of all four phase latencies over all workers, nanoseconds.
    pub total_ns: u64,
    /// Vertices that ran compute, summed over workers.
    pub computed: u64,
    /// Messages sent, summed over workers.
    pub messages: u64,
    /// Workers that reported this superstep.
    pub workers: u64,
}

impl TraceStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the accumulator from a fully loaded trace.
    pub fn from_trace(trace: &RunTrace) -> Self {
        let mut s = Self::new();
        for r in &trace.records {
            s.add(r);
        }
        s
    }

    /// Absorbs one record.
    pub fn add(&mut self, r: &TraceRecord) {
        self.records += 1;
        for (h, ns) in self
            .hists
            .iter()
            .zip([r.parse_ns, r.compute_ns, r.send_ns, r.sync_ns])
        {
            h.record(ns);
        }
        let s = r.superstep as usize;
        if s >= self.supersteps.len() {
            self.supersteps.resize(s + 1, SuperstepAgg::default());
        }
        let agg = &mut self.supersteps[s];
        agg.total_ns += r.parse_ns + r.compute_ns + r.send_ns + r.sync_ns;
        agg.computed += r.computed;
        agg.messages += r.messages;
        agg.workers += 1;
    }

    /// Records absorbed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Supersteps seen so far (highest superstep index + 1).
    pub fn supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Snapshot of one phase's latency histogram (index into [`PHASES`]).
    pub fn phase_snapshot(&self, phase: usize) -> HistogramSnapshot {
        self.hists[phase].snapshot()
    }

    /// The per-phase quantile table: count, mean, p50/p90/p99, max.
    pub fn phase_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<5} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "phase", "records", "mean", "p50", "p90", "p99", "max"
        );
        for (i, name) in PHASES.iter().enumerate() {
            let s = self.hists[i].snapshot();
            if s.is_empty() {
                let _ = writeln!(out, "{name:<5} {:>9} {:>10}", 0, "-");
                continue;
            }
            let _ = writeln!(
                out,
                "{:<5} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                s.count,
                fmt_ns(s.mean() as u64),
                fmt_ns(s.percentile(0.50)),
                fmt_ns(s.percentile(0.90)),
                fmt_ns(s.percentile(0.99)),
                fmt_ns(s.max),
            );
        }
        out
    }

    /// Sparkline rows over the last `width` supersteps: wall time per
    /// superstep, computed vertices, and messages sent.
    pub fn sparkline_table(&self, width: usize) -> String {
        let series: [(&str, Vec<u64>); 3] = [
            ("time", self.supersteps.iter().map(|a| a.total_ns).collect()),
            (
                "computed",
                self.supersteps.iter().map(|a| a.computed).collect(),
            ),
            (
                "messages",
                self.supersteps.iter().map(|a| a.messages).collect(),
            ),
        ];
        let mut out = String::new();
        let shown = self.supersteps.len().min(width);
        let _ = writeln!(
            out,
            "last {shown} of {} supersteps (left = older):",
            self.supersteps.len()
        );
        for (name, values) in series {
            let _ = writeln!(out, "{:>9} {}", name, sparkline_last(&values, width));
        }
        out
    }
}

/// Renders nanoseconds with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// The full `cyclops metrics` report for a loaded trace: run header,
/// per-phase quantile table, and superstep sparklines.
pub fn metrics_report(trace: &RunTrace) -> String {
    let stats = TraceStats::from_trace(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "engine {} on {} ({} workers), {} records over {} supersteps",
        trace.meta.engine,
        trace.meta.cluster,
        trace.meta.workers,
        stats.records(),
        stats.supersteps(),
    );
    out.push_str(&stats.phase_table());
    out.push('\n');
    out.push_str(&stats.sparkline_table(64));
    out
}

/// One frame of the `cyclops top` dashboard.
pub fn top_frame(meta: Option<&TraceMeta>, stats: &TraceStats, width: usize) -> String {
    let mut out = String::new();
    match meta {
        Some(m) => {
            let _ = writeln!(
                out,
                "cyclops top — engine {} on {} ({} workers)",
                m.engine, m.cluster, m.workers
            );
        }
        None => {
            let _ = writeln!(out, "cyclops top — waiting for trace header...");
        }
    }
    let complete = meta
        .map(|m| m.workers > 0 && stats.records() == stats.supersteps() as u64 * m.workers)
        .unwrap_or(false);
    let _ = writeln!(
        out,
        "{} records, {} supersteps{}",
        stats.records(),
        stats.supersteps(),
        if complete { "" } else { " (partial)" },
    );
    out.push('\n');
    out.push_str(&stats.phase_table());
    out.push('\n');
    out.push_str(&stats.sparkline_table(width));
    out
}

/// Projects a loaded trace onto the engine-agnostic critical-path model:
/// records grouped by superstep, each worker's phase nanoseconds becoming
/// one [`PhaseSample`].
pub fn critical_path(trace: &RunTrace) -> CriticalPath {
    let mut grouped: std::collections::BTreeMap<u64, Vec<PhaseSample>> =
        std::collections::BTreeMap::new();
    for r in &trace.records {
        grouped.entry(r.superstep).or_default().push(PhaseSample {
            worker: r.worker,
            parse_ns: r.parse_ns,
            compute_ns: r.compute_ns,
            send_ns: r.send_ns,
            sync_ns: r.sync_ns,
        });
    }
    CriticalPath::analyze(grouped)
}

/// The run-level hot-vertex table: per-superstep sketch outputs summed per
/// vertex over the whole trace, top `k` by total cost (ties → lowest
/// vertex). Empty when the trace was recorded without `--hot`.
pub fn hot_vertices(trace: &RunTrace, k: usize) -> Vec<(u32, u64)> {
    let mut totals: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for r in &trace.records {
        for &(v, w) in &r.hot {
            *totals.entry(v).or_default() += w;
        }
    }
    let mut out: Vec<(u32, u64)> = totals.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

/// Per-superstep adaptive wire-encoding mix, summed over workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireMixRow {
    /// Superstep index.
    pub superstep: u64,
    /// Cross-machine batches that self-selected the dense bitmap encoding.
    pub dense: u64,
    /// Cross-machine batches that self-selected the sparse delta encoding.
    pub sparse: u64,
    /// Workers that ran this superstep on the sparse fast path.
    pub fast_workers: u64,
}

/// The per-superstep wire-encoding mix of a trace: dense/sparse batch counts
/// and fast-path worker counts, summed over workers. Supersteps with neither
/// adaptive batches nor fast-path workers are omitted, so a legacy trace
/// yields an empty vec.
pub fn wire_mix(trace: &RunTrace) -> Vec<WireMixRow> {
    let mut rows: std::collections::BTreeMap<u64, WireMixRow> = std::collections::BTreeMap::new();
    for r in &trace.records {
        if r.wire_dense == 0 && r.wire_sparse == 0 && !r.sparse_fast_path {
            continue;
        }
        let row = rows.entry(r.superstep).or_default();
        row.superstep = r.superstep;
        row.dense += r.wire_dense;
        row.sparse += r.wire_sparse;
        row.fast_workers += r.sparse_fast_path as u64;
    }
    rows.into_values().collect()
}

/// Per-superstep bucketed-scheduler accounting, aggregated over workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketRow {
    /// Superstep index.
    pub superstep: u64,
    /// Index of the priority bucket this superstep drained.
    pub bucket: u64,
    /// Relaxation rounds fused behind this superstep's single barrier pair
    /// (every worker records the same global round count; the max guards
    /// against partially written traces).
    pub fused: u64,
    /// Distinct vertices drained from the bucket, summed over workers.
    pub occupancy: u64,
}

/// The per-superstep bucket occupancy of a trace: which bucket each
/// superstep drained, how many relaxation rounds it fused, and how many
/// distinct vertices it computed. Unbucketed runs (and legacy traces)
/// record no fused rounds and yield an empty vec.
pub fn bucketing(trace: &RunTrace) -> Vec<BucketRow> {
    let mut rows: std::collections::BTreeMap<u64, BucketRow> = std::collections::BTreeMap::new();
    for r in &trace.records {
        if r.fused == 0 {
            continue;
        }
        let row = rows.entry(r.superstep).or_default();
        row.superstep = r.superstep;
        row.bucket = r.bucket;
        row.fused = row.fused.max(r.fused);
        row.occupancy += r.bucket_occupancy;
    }
    rows.into_values().collect()
}

/// One dynamic-migration epoch boundary, reconstructed from the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MigrationRow {
    /// First superstep *after* the boundary (the superstep whose records
    /// carry the `migrated` counters).
    pub superstep: u64,
    /// Masters moved at this boundary, summed over receiving workers.
    pub moved: u64,
    /// Compute-time imbalance (max/mean of worker `cmp` nanoseconds) on
    /// the last superstep before the boundary; 0 when unmeasurable.
    pub imbalance_before: f64,
    /// Compute-time imbalance on the first superstep after the boundary.
    pub imbalance_after: f64,
}

/// Max/mean compute-time imbalance across the workers of one superstep
/// (1.0 = perfectly balanced; 0.0 when the superstep has no compute time).
fn superstep_compute_imbalance(trace: &RunTrace, superstep: u64) -> f64 {
    let (mut sum, mut max, mut n) = (0u64, 0u64, 0u64);
    for r in trace.records.iter().filter(|r| r.superstep == superstep) {
        sum += r.compute_ns;
        max = max.max(r.compute_ns);
        n += 1;
    }
    if sum == 0 {
        0.0
    } else {
        max as f64 * n as f64 / sum as f64
    }
}

/// The dynamic-migration boundaries of a trace: supersteps whose records
/// carry nonzero `migrated` counters, with moved-master totals and the
/// compute-time imbalance on either side of each boundary. Static runs
/// (and legacy traces) record no `migrated` counters and yield an empty
/// vec, so their reports are unchanged.
pub fn migrations(trace: &RunTrace) -> Vec<MigrationRow> {
    let mut rows: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for r in &trace.records {
        if r.migrated > 0 {
            *rows.entry(r.superstep).or_default() += r.migrated;
        }
    }
    rows.into_iter()
        .map(|(superstep, moved)| MigrationRow {
            superstep,
            moved,
            imbalance_before: superstep_compute_imbalance(trace, superstep.saturating_sub(1)),
            imbalance_after: superstep_compute_imbalance(trace, superstep),
        })
        .collect()
}

/// One `(src, dst)` cell of the worker-pair communication matrix,
/// aggregated over the whole run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommPair {
    /// Sending worker.
    pub src: u64,
    /// Receiving worker.
    pub dst: u64,
    /// Messages sent from `src` to `dst` (intra- and cross-machine alike).
    pub messages: u64,
    /// Cross-machine wire bytes from `src` to `dst`.
    pub bytes: u64,
    /// Cross-machine batches encoded in the dense wire mode.
    pub wire_dense: u64,
    /// Cross-machine batches encoded in the sparse wire mode.
    pub wire_sparse: u64,
}

/// The worker-pair communication matrix of a trace: per-record `comm` rows
/// summed over supersteps, keyed and ordered by `(src, dst)`. Empty for
/// traces recorded before the matrix existed.
pub fn comm_pairs(trace: &RunTrace) -> Vec<CommPair> {
    let mut rows: std::collections::BTreeMap<(u64, u64), CommPair> =
        std::collections::BTreeMap::new();
    for r in &trace.records {
        for e in &r.comm {
            let row = rows.entry((r.worker, e.dst as u64)).or_default();
            row.src = r.worker;
            row.dst = e.dst as u64;
            row.messages += e.messages;
            row.bytes += e.bytes;
            row.wire_dense += e.wire_dense;
            row.wire_sparse += e.wire_sparse;
        }
    }
    rows.into_values().collect()
}

/// The `(superstep, worker)` keys of records whose communication-matrix
/// row sums disagree with their `messages`/`bytes` counters. Always empty
/// for healthy traces — the matrix is populated from the same transport
/// counters the totals come from.
pub fn comm_mismatches(trace: &RunTrace) -> Vec<(u64, u64)> {
    trace
        .records
        .iter()
        .filter(|r| !r.comm_consistent())
        .map(|r| (r.superstep, r.worker))
        .collect()
}

const SHADES: [char; 5] = ['.', '░', '▒', '▓', '█'];

fn shade(value: u64, max: u64) -> char {
    if value == 0 || max == 0 {
        SHADES[0]
    } else {
        // Map (0, max] onto the four non-zero shades.
        let i = 1 + (value.saturating_mul(3)) / max;
        SHADES[i.min(4) as usize]
    }
}

/// The `cyclops comm` report: a worker-pair heatmap of wire bytes, the top
/// pairs by volume, and the row-sum consistency verdict. Deterministic for
/// a fixed trace file.
pub fn comm_report(trace: &RunTrace) -> String {
    let pairs = comm_pairs(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "comm: engine {} on {} ({} workers), {} records over {} supersteps",
        trace.meta.engine,
        trace.meta.cluster,
        trace.meta.workers,
        trace.records.len(),
        trace.supersteps(),
    );
    if pairs.is_empty() {
        out.push_str("no communication matrix recorded (trace predates comm rows)\n");
        return out;
    }
    let workers = trace.meta.workers as usize;
    let mut bytes = vec![0u64; workers * workers];
    let mut msgs = vec![0u64; workers * workers];
    for p in &pairs {
        if (p.src as usize) < workers && (p.dst as usize) < workers {
            bytes[p.src as usize * workers + p.dst as usize] = p.bytes;
            msgs[p.src as usize * workers + p.dst as usize] = p.messages;
        }
    }
    let total_msgs: u64 = pairs.iter().map(|p| p.messages).sum();
    let total_bytes: u64 = pairs.iter().map(|p| p.bytes).sum();
    let dense: u64 = pairs.iter().map(|p| p.wire_dense).sum();
    let sparse: u64 = pairs.iter().map(|p| p.wire_sparse).sum();
    let _ = writeln!(
        out,
        "{total_msgs} messages / {total_bytes} wire bytes over {} worker pairs \
         ({dense} dense / {sparse} sparse batches)",
        pairs.len(),
    );
    out.push('\n');

    // Shade heatmap of wire bytes (messages fall back when no pair crossed
    // a machine boundary, e.g. single-machine clusters).
    let (cells, unit) = if total_bytes > 0 {
        (&bytes, "wire bytes")
    } else {
        (&msgs, "messages")
    };
    let max = cells.iter().copied().max().unwrap_or(0);
    let _ = writeln!(out, "heatmap ({unit}, src rows -> dst cols):");
    out.push_str("       ");
    for d in 0..workers {
        let _ = write!(out, "{d:>3}");
    }
    out.push('\n');
    for s in 0..workers {
        let _ = write!(out, "  {s:>4} ");
        for d in 0..workers {
            let _ = write!(out, "  {}", shade(cells[s * workers + d], max));
        }
        out.push('\n');
    }
    out.push('\n');

    out.push_str("top pairs by volume:\n");
    let _ = writeln!(
        out,
        "  {:>4} {:>4} {:>10} {:>12} {:>7} {:>7}",
        "src", "dst", "messages", "bytes", "dense", "sparse"
    );
    let mut ranked = pairs.clone();
    ranked.sort_by(|a, b| {
        (b.bytes, b.messages, a.src, a.dst).cmp(&(a.bytes, a.messages, b.src, b.dst))
    });
    for p in ranked.iter().take(12) {
        let _ = writeln!(
            out,
            "  {:>4} {:>4} {:>10} {:>12} {:>7} {:>7}",
            p.src, p.dst, p.messages, p.bytes, p.wire_dense, p.wire_sparse
        );
    }
    out.push('\n');

    let bad = comm_mismatches(trace);
    if bad.is_empty() {
        let _ = writeln!(
            out,
            "row sums consistent with sent counters in all {} records",
            trace.records.len()
        );
    } else {
        let _ = writeln!(
            out,
            "ROW-SUM MISMATCH in {} records (superstep, worker): {:?}",
            bad.len(),
            &bad[..bad.len().min(8)]
        );
    }
    out
}

/// Renders `ns` as Chrome trace-event microseconds (`ts`/`dur` fields):
/// integer microseconds with the nanosecond remainder as three decimals.
fn chrome_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn chrome_args(s: &SpanRecord) -> String {
    match s.kind {
        SpanKind::Parse | SpanKind::Send => format!("{{\"superstep\":{}}}", s.a),
        SpanKind::Compute => {
            if s.b > 0 {
                format!("{{\"superstep\":{},\"sub\":{}}}", s.a, s.b)
            } else {
                format!("{{\"superstep\":{}}}", s.a)
            }
        }
        SpanKind::Barrier => format!("{{\"epoch\":{}}}", s.a),
        SpanKind::Round => format!(
            "{{\"bucket\":{},\"round\":{},\"selected\":{}}}",
            s.a, s.b, s.c
        ),
        SpanKind::Chunk => format!(
            "{{\"superstep\":{},\"chunk\":{},\"vertices\":{}}}",
            s.a, s.b, s.c
        ),
        SpanKind::Flush => format!("{{\"dst\":{},\"bytes\":{},\"mode\":{}}}", s.a, s.b, s.c),
    }
}

/// Per-worker peak bytes by component, aggregated from a trace's
/// `{"mem":…}` samples. Peaks are monotonic within a run, so each row is
/// the component-wise maximum over that worker's samples. The untagged
/// (non-engine-thread) slot is reported as worker [`u32::MAX`].
pub struct MemPeaks {
    /// `(worker, per-component peak bytes)` rows, workers ascending with
    /// the untagged slot last.
    pub workers: Vec<(u32, [u64; NUM_COMPONENTS])>,
    /// Component-wise sum over all rows.
    pub totals: [u64; NUM_COMPONENTS],
    /// Maximum `/proc/self/status` VmRSS seen across samples, kB (0 when
    /// unavailable — non-Linux or restricted environments).
    pub rss_kb: u64,
    /// Maximum VmHWM seen across samples, kB (0 when unavailable).
    pub hwm_kb: u64,
    /// Number of mem samples aggregated.
    pub samples: usize,
}

/// Aggregates a trace's mem samples into [`MemPeaks`] rows.
pub fn mem_peaks(trace: &RunTrace) -> MemPeaks {
    let mut rows: Vec<(u32, [u64; NUM_COMPONENTS])> = Vec::new();
    let mut rss_kb = 0u64;
    let mut hwm_kb = 0u64;
    for m in &trace.mem {
        rss_kb = rss_kb.max(m.rss_kb);
        hwm_kb = hwm_kb.max(m.hwm_kb);
        let row = match rows.iter_mut().find(|(w, _)| *w == m.worker) {
            Some((_, row)) => row,
            None => {
                rows.push((m.worker, [0; NUM_COMPONENTS]));
                &mut rows.last_mut().unwrap().1
            }
        };
        for (slot, &p) in row.iter_mut().zip(m.peak.iter()) {
            *slot = (*slot).max(p);
        }
    }
    // Workers ascending; u32::MAX (untagged) naturally sorts last.
    rows.sort_by_key(|&(w, _)| w);
    let mut totals = [0u64; NUM_COMPONENTS];
    for (_, row) in &rows {
        for (t, p) in totals.iter_mut().zip(row.iter()) {
            *t += p;
        }
    }
    MemPeaks {
        workers: rows,
        totals,
        rss_kb,
        hwm_kb,
        samples: trace.mem.len(),
    }
}

/// Formats a byte count compactly and deterministically (`999 B`,
/// `1.5 KiB`, `23.4 MiB`, `1.2 GiB`).
pub fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let bf = b as f64;
    if bf >= KIB * KIB * KIB {
        format!("{:.1} GiB", bf / (KIB * KIB * KIB))
    } else if bf >= KIB * KIB {
        format!("{:.1} MiB", bf / (KIB * KIB))
    } else if bf >= KIB {
        format!("{:.1} KiB", bf / KIB)
    } else {
        format!("{b} B")
    }
}

/// The `cyclops mem` report: a per-worker, per-component peak table from
/// the trace's `{"mem":…}` samples, plus the process RSS high-water marks.
pub fn mem_report(trace: &RunTrace) -> String {
    let peaks = mem_peaks(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mem: engine {} on {} ({} workers), {} samples over {} supersteps",
        trace.meta.engine,
        trace.meta.cluster,
        trace.meta.workers,
        peaks.samples,
        trace.supersteps(),
    );
    if peaks.samples == 0 {
        out.push_str("no memory samples recorded (run without --mem)\n");
        return out;
    }
    out.push_str("peak bytes by worker and component:\n");
    let _ = write!(out, "  {:>8}", "worker");
    for c in Component::ALL {
        let _ = write!(out, " {:>12}", c.name());
    }
    let _ = writeln!(out, " {:>12}", "total");
    for (w, row) in &peaks.workers {
        if *w == u32::MAX {
            let _ = write!(out, "  {:>8}", "untagged");
        } else {
            let _ = write!(out, "  {:>8}", w);
        }
        for p in row {
            let _ = write!(out, " {:>12}", fmt_bytes(*p));
        }
        let _ = writeln!(out, " {:>12}", fmt_bytes(row.iter().sum()));
    }
    let _ = write!(out, "  {:>8}", "all");
    for t in &peaks.totals {
        let _ = write!(out, " {:>12}", fmt_bytes(*t));
    }
    let _ = writeln!(out, " {:>12}", fmt_bytes(peaks.totals.iter().sum()));
    if peaks.rss_kb > 0 || peaks.hwm_kb > 0 {
        let _ = writeln!(
            out,
            "process rss: peak {} (VmHWM {})",
            fmt_bytes(peaks.rss_kb * 1024),
            fmt_bytes(peaks.hwm_kb * 1024),
        );
    } else {
        out.push_str("process rss: unavailable (/proc/self/status not readable)\n");
    }
    out
}

/// The `cyclops mem --json` report: [`mem_peaks`] as one deterministic
/// JSON object (stable key order, integers only; the untagged slot is
/// reported as worker `-1`).
pub fn mem_json(trace: &RunTrace) -> String {
    let peaks = mem_peaks(trace);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"engine\": \"{}\",\n  \"cluster\": \"{}\",\n  \"samples\": {},\n  \
         \"supersteps\": {},\n  \"rss_kb\": {},\n  \"hwm_kb\": {},\n  \"workers\": [",
        trace.meta.engine,
        trace.meta.cluster,
        peaks.samples,
        trace.supersteps(),
        peaks.rss_kb,
        peaks.hwm_kb,
    );
    for (i, (w, row)) in peaks.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let worker = if *w == u32::MAX { -1 } else { *w as i64 };
        let _ = write!(out, "\n    {{\"worker\": {worker}, \"peak\": {{");
        for (j, c) in Component::ALL.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.name(), row[j]);
        }
        out.push_str("}}");
    }
    out.push_str("\n  ],\n  \"totals\": {");
    for (j, c) in Component::ALL.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {}", c.name(), peaks.totals[j]);
    }
    out.push_str("}\n}\n");
    out
}

/// Exports a trace as Chrome trace-event JSON (`chrome://tracing`,
/// Perfetto). Real flight-recorder spans are used when the trace has them
/// (`--flight` runs); otherwise one complete-event per phase per record is
/// synthesized on a per-worker cumulative clock, which preserves relative
/// phase widths but not true wall-clock alignment across workers.
pub fn chrome_trace(trace: &RunTrace) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool, line: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&line);
    };
    for w in 0..trace.meta.workers {
        emit(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":{w},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            ),
        );
    }
    if trace.spans.is_empty() {
        // Synthesized fallback: per-worker cumulative clocks from the
        // deterministic phase counters.
        let mut clock: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for r in &trace.records {
            let t = clock.entry(r.worker).or_default();
            for (name, ns) in PHASES
                .iter()
                .zip([r.parse_ns, r.compute_ns, r.send_ns, r.sync_ns])
            {
                emit(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":{},\"tid\":0,\"ts\":{},\"dur\":{},\
                         \"name\":\"{}\",\"args\":{{\"superstep\":{},\"synthetic\":true}}}}",
                        r.worker,
                        chrome_us(*t),
                        chrome_us(ns),
                        name,
                        r.superstep
                    ),
                );
                *t += ns;
            }
        }
    } else {
        for s in &trace.spans {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\",\"args\":{}}}",
                    s.worker,
                    s.thread,
                    chrome_us(s.start_ns),
                    chrome_us(s.dur_ns),
                    s.kind.name(),
                    chrome_args(s)
                ),
            );
        }
    }
    out.push_str("\n]}\n");
    out
}

/// The `cyclops timeline` stdout summary: span counts and total time per
/// kind, or the synthesized-fallback note for traces without spans.
pub fn timeline_summary(trace: &RunTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "timeline: engine {} on {} ({} workers), {} spans over {} supersteps",
        trace.meta.engine,
        trace.meta.cluster,
        trace.meta.workers,
        trace.spans.len(),
        trace.supersteps(),
    );
    if trace.spans.is_empty() {
        out.push_str(
            "no flight-recorder spans in trace (record with --flight); \
             --chrome synthesizes phase spans from the records instead\n",
        );
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<8} {:>8} {:>12} {:>12}",
        "kind", "spans", "total", "mean"
    );
    for kind in SpanKind::ALL {
        let (count, total) = trace
            .spans
            .iter()
            .filter(|s| s.kind == kind)
            .fold((0u64, 0u64), |(c, t), s| (c + 1, t + s.dur_ns));
        if count == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<8} {:>8} {:>12} {:>12}",
            kind.name(),
            count,
            fmt_ns(total),
            fmt_ns(total / count),
        );
    }
    out
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// The human `cyclops why-slow` report: run summary, wall-time
/// decomposition, straggler ranking, per-superstep critical path,
/// hot-vertex table, and sparkline timelines. Deterministic for a fixed
/// trace file.
pub fn why_slow_report(trace: &RunTrace) -> String {
    let cp = critical_path(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "why-slow: engine {} on {} ({} workers), {} records over {} supersteps",
        trace.meta.engine,
        trace.meta.cluster,
        trace.meta.workers,
        trace.records.len(),
        trace.supersteps(),
    );
    let _ = writeln!(
        out,
        "critical path {} (chain of per-superstep maxima)",
        fmt_ns(cp.total_span_ns)
    );
    // The attribution pool: every worker's exact span decomposition, summed.
    let pool = cp.total_work_ns + cp.total_wait_ns + cp.total_residual_ns;
    let _ = writeln!(
        out,
        "aggregate worker time: work {:.1}%  barrier-wait {:.1}%  residual {:.1}%",
        pct(cp.total_work_ns, pool),
        pct(cp.total_wait_ns, pool),
        pct(cp.total_residual_ns, pool),
    );
    out.push('\n');

    let ranking = cp.straggler_ranking();
    if ranking.is_empty() {
        out.push_str("no supersteps recorded\n");
        return out;
    }
    out.push_str("straggler ranking (barrier wait each worker's phase caused in others):\n");
    for share in ranking.iter().take(8) {
        let _ = writeln!(
            out,
            "  worker {} {}  {:>10}  {:>5.1}% of aggregate time  ({} supersteps)",
            share.worker,
            share.phase.label(),
            fmt_ns(share.caused_wait_ns),
            pct(share.caused_wait_ns, pool),
            share.supersteps,
        );
    }
    out.push('\n');

    out.push_str("per-superstep critical path (last 16):\n");
    let _ = writeln!(
        out,
        "  {:>5} {:>10} {:>9} {:>6} {:>10} {:>12}",
        "step", "span", "straggler", "phase", "work", "caused-wait"
    );
    let tail = cp.supersteps.len().saturating_sub(16);
    for s in &cp.supersteps[tail..] {
        let _ = writeln!(
            out,
            "  {:>5} {:>10} {:>9} {:>6} {:>10} {:>12}",
            s.superstep,
            fmt_ns(s.span_ns),
            s.straggler,
            s.straggler_phase.label(),
            fmt_ns(s.straggler_work_ns),
            fmt_ns(s.caused_wait_ns),
        );
    }
    out.push('\n');

    let hot = hot_vertices(trace, 10);
    if hot.is_empty() {
        out.push_str("hot vertices: none recorded (run with --hot K to capture)\n");
    } else {
        let total: u64 = hot.iter().map(|&(_, w)| w).sum();
        out.push_str("hot vertices (sketch cost summed over supersteps):\n");
        let _ = writeln!(out, "  {:>10} {:>12} {:>7}", "vertex", "cost", "share");
        for &(v, w) in &hot {
            let _ = writeln!(out, "  {:>10} {:>12} {:>6.1}%", v, w, pct(w, total));
        }
    }
    out.push('\n');

    let mix = wire_mix(trace);
    if mix.is_empty() {
        out.push_str("wire encoding: no adaptive batches recorded (legacy codec path)\n");
    } else {
        let dense: u64 = mix.iter().map(|m| m.dense).sum();
        let sparse: u64 = mix.iter().map(|m| m.sparse).sum();
        let fast_steps = mix.iter().filter(|m| m.fast_workers > 0).count();
        let _ = writeln!(
            out,
            "wire encoding: {dense} dense / {sparse} sparse batches, \
             {fast_steps} of {} supersteps on the sparse fast path",
            trace.supersteps(),
        );
        let _ = writeln!(
            out,
            "  {:>5} {:>7} {:>7} {:>12}",
            "step", "dense", "sparse", "fast-workers"
        );
        let tail = mix.len().saturating_sub(16);
        for m in &mix[tail..] {
            let _ = writeln!(
                out,
                "  {:>5} {:>7} {:>7} {:>12}",
                m.superstep, m.dense, m.sparse, m.fast_workers
            );
        }
    }
    out.push('\n');

    let pairs = comm_pairs(trace);
    if pairs.is_empty() {
        out.push_str("communication matrix: none recorded (trace predates comm rows)\n");
    } else {
        let msgs: u64 = pairs.iter().map(|p| p.messages).sum();
        let bytes: u64 = pairs.iter().map(|p| p.bytes).sum();
        let bad = comm_mismatches(trace);
        let verdict = if bad.is_empty() {
            "row sums consistent".to_string()
        } else {
            format!("ROW-SUM MISMATCH in {} records", bad.len())
        };
        let _ = writeln!(
            out,
            "communication matrix: {msgs} messages / {bytes} wire bytes over {} worker pairs, \
             {verdict}",
            pairs.len(),
        );
        let mut ranked = pairs.clone();
        ranked.sort_by(|a, b| {
            (b.bytes, b.messages, a.src, a.dst).cmp(&(a.bytes, a.messages, b.src, b.dst))
        });
        let _ = writeln!(
            out,
            "  {:>4} {:>4} {:>10} {:>12}",
            "src", "dst", "messages", "bytes"
        );
        for p in ranked.iter().take(8) {
            let _ = writeln!(
                out,
                "  {:>4} {:>4} {:>10} {:>12}",
                p.src, p.dst, p.messages, p.bytes
            );
        }
    }
    out.push('\n');

    // Hybrid replication: direct messages bypass replicas for cold boundary
    // vertices; compare their share of the wire against the replica-sync
    // traffic to judge the threshold.
    let direct_msgs: u64 = trace.records.iter().map(|r| r.direct_messages).sum();
    let direct_bytes: u64 = trace.records.iter().map(|r| r.direct_bytes).sum();
    if direct_msgs == 0 {
        out.push_str("hybrid replication: off (every boundary vertex replicated)\n");
    } else {
        let total_msgs: u64 = trace.records.iter().map(|r| r.messages).sum();
        let total_bytes: u64 = trace.records.iter().map(|r| r.bytes).sum();
        let _ = writeln!(
            out,
            "hybrid replication: {direct_msgs} direct messages / {direct_bytes} bytes \
             ({:.1}% of messages, {:.1}% of wire bytes) took the no-replica path; \
             the rest is replica sync for hot boundary vertices",
            pct(direct_msgs, total_msgs),
            pct(direct_bytes, total_bytes),
        );
    }
    out.push('\n');

    let buckets = bucketing(trace);
    if buckets.is_empty() {
        out.push_str("bucketed execution: off (one barrier per relaxation hop)\n");
    } else {
        let rounds: u64 = buckets.iter().map(|b| b.fused).sum();
        let _ = writeln!(
            out,
            "bucketed execution: {rounds} relaxation rounds fused into {} supersteps \
             ({} barrier rounds saved)",
            buckets.len(),
            rounds.saturating_sub(buckets.len() as u64),
        );
        let _ = writeln!(
            out,
            "  {:>5} {:>7} {:>6} {:>10}",
            "step", "bucket", "fused", "occupancy"
        );
        let tail = buckets.len().saturating_sub(16);
        for b in &buckets[tail..] {
            let _ = writeln!(
                out,
                "  {:>5} {:>7} {:>6} {:>10}",
                b.superstep, b.bucket, b.fused, b.occupancy
            );
        }
    }
    out.push('\n');

    // Migration paragraph — only for `--migrate` traces (static runs
    // record no `migrated` counters, keeping pre-existing reports
    // byte-identical).
    let moves = migrations(trace);
    if !moves.is_empty() {
        let moved: u64 = moves.iter().map(|m| m.moved).sum();
        let _ = writeln!(
            out,
            "dynamic migration: {moved} masters moved across {} epoch boundaries \
             (imbalance = max/mean worker compute time per superstep)",
            moves.len(),
        );
        let _ = writeln!(
            out,
            "  {:>5} {:>7} {:>11} {:>11}",
            "step", "moved", "imb-before", "imb-after"
        );
        let tail = moves.len().saturating_sub(16);
        for m in &moves[tail..] {
            let _ = writeln!(
                out,
                "  {:>5} {:>7} {:>11.2} {:>11.2}",
                m.superstep, m.moved, m.imbalance_before, m.imbalance_after
            );
        }
        out.push('\n');
    }

    // Memory paragraph — only for `--mem` traces (plain traces carry no
    // samples, keeping pre-existing reports byte-identical).
    if !trace.mem.is_empty() {
        let peaks = mem_peaks(trace);
        let _ = write!(out, "memory ({} samples): peak", peaks.samples);
        for (j, c) in Component::ALL.iter().enumerate() {
            if peaks.totals[j] > 0 {
                let _ = write!(out, " {} {}", c.name(), fmt_bytes(peaks.totals[j]));
            }
        }
        out.push('\n');
        if peaks.rss_kb > 0 {
            let _ = writeln!(
                out,
                "  process rss peak {} (VmHWM {}); see `cyclops mem` for the per-worker table",
                fmt_bytes(peaks.rss_kb * 1024),
                fmt_bytes(peaks.hwm_kb * 1024),
            );
        } else {
            out.push_str("  process rss unavailable; see `cyclops mem` for the per-worker table\n");
        }
        out.push('\n');
    }

    let spans: Vec<u64> = cp.supersteps.iter().map(|s| s.span_ns).collect();
    let waits: Vec<u64> = cp.supersteps.iter().map(|s| s.caused_wait_ns).collect();
    let _ = writeln!(
        out,
        "timelines over {} supersteps (left = older):",
        cp.supersteps.len()
    );
    let _ = writeln!(out, "{:>12} {}", "span", sparkline_last(&spans, 64));
    let _ = writeln!(out, "{:>12} {}", "caused-wait", sparkline_last(&waits, 64));
    out
}

/// The `cyclops why-slow --json` report: the same analysis as
/// [`why_slow_report`] as one deterministic JSON object (stable key order,
/// integers only), suitable for golden-file testing and scripting.
pub fn why_slow_json(trace: &RunTrace) -> String {
    let cp = critical_path(trace);
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"engine\": \"{}\",\n  \"cluster\": \"{}\",\n  \"workers\": {},\n  \
         \"records\": {},\n  \"supersteps\": {},\n  \"critical_path_ns\": {},\n  \
         \"work_ns\": {},\n  \"wait_ns\": {},\n  \"residual_ns\": {},\n",
        trace.meta.engine,
        trace.meta.cluster,
        trace.meta.workers,
        trace.records.len(),
        trace.supersteps(),
        cp.total_span_ns,
        cp.total_work_ns,
        cp.total_wait_ns,
        cp.total_residual_ns,
    );
    out.push_str("  \"stragglers\": [");
    for (i, s) in cp.straggler_ranking().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"worker\": {}, \"phase\": \"{}\", \"caused_wait_ns\": {}, \"supersteps\": {}}}",
            s.worker,
            s.phase.name(),
            s.caused_wait_ns,
            s.supersteps,
        );
    }
    out.push_str("\n  ],\n  \"superstep_paths\": [");
    for (i, s) in cp.supersteps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"superstep\": {}, \"span_ns\": {}, \"critical_worker\": {}, \
             \"straggler\": {}, \"phase\": \"{}\", \"straggler_work_ns\": {}, \
             \"caused_wait_ns\": {}, \"barrier_ns\": {}}}",
            s.superstep,
            s.span_ns,
            s.critical_worker,
            s.straggler,
            s.straggler_phase.name(),
            s.straggler_work_ns,
            s.caused_wait_ns,
            s.barrier_ns,
        );
    }
    out.push_str("\n  ],\n  \"hot_vertices\": [");
    for (i, (v, w)) in hot_vertices(trace, 10).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {{\"vertex\": {v}, \"cost\": {w}}}");
    }
    out.push_str("\n  ],\n  \"wire_mix\": [");
    for (i, m) in wire_mix(trace).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"superstep\": {}, \"dense\": {}, \"sparse\": {}, \"fast_path_workers\": {}}}",
            m.superstep, m.dense, m.sparse, m.fast_workers
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"comm_consistent\": {},\n  \"comm\": [",
        comm_mismatches(trace).is_empty()
    );
    for (i, p) in comm_pairs(trace).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"src\": {}, \"dst\": {}, \"messages\": {}, \"bytes\": {}, \
             \"wire_dense\": {}, \"wire_sparse\": {}}}",
            p.src, p.dst, p.messages, p.bytes, p.wire_dense, p.wire_sparse
        );
    }
    out.push_str("\n  ],\n  \"bucketing\": [");
    for (i, b) in bucketing(trace).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"superstep\": {}, \"bucket\": {}, \"fused\": {}, \"occupancy\": {}}}",
            b.superstep, b.bucket, b.fused, b.occupancy
        );
    }
    out.push_str("\n  ]");
    // Migration array — only for `--migrate` traces, so goldens from
    // static runs are unchanged. Imbalance is reported in integer
    // permille to keep the object float-free.
    let moves = migrations(trace);
    if !moves.is_empty() {
        out.push_str(",\n  \"migrations\": [");
        for (i, m) in moves.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"superstep\": {}, \"moved\": {}, \
                 \"imbalance_before_permille\": {}, \"imbalance_after_permille\": {}}}",
                m.superstep,
                m.moved,
                (m.imbalance_before * 1000.0).round() as u64,
                (m.imbalance_after * 1000.0).round() as u64,
            );
        }
        out.push_str("\n  ]");
    }
    // Memory object — only for `--mem` traces, so goldens from plain runs
    // are unchanged.
    if !trace.mem.is_empty() {
        let peaks = mem_peaks(trace);
        let _ = write!(
            out,
            ",\n  \"memory\": {{\"samples\": {}, \"rss_kb\": {}, \"hwm_kb\": {}, \"peak\": {{",
            peaks.samples, peaks.rss_kb, peaks.hwm_kb
        );
        for (j, c) in Component::ALL.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.name(), peaks.totals[j]);
        }
        out.push_str("}}");
    }
    out.push_str("\n}\n");
    out
}

/// Tails a streaming trace file incrementally: each [`TraceFollower::poll`]
/// reads only the bytes appended since the previous poll and yields the
/// newly completed records. A partially written last line (the writer
/// flushes whole lines, but a poll can still race the OS) is buffered until
/// its newline arrives.
pub struct TraceFollower {
    path: String,
    offset: u64,
    partial: String,
    meta: Option<TraceMeta>,
}

impl TraceFollower {
    /// A follower for `path`, starting at the beginning of the file.
    pub fn new(path: &str) -> Self {
        TraceFollower {
            path: path.to_string(),
            offset: 0,
            partial: String::new(),
            meta: None,
        }
    }

    /// The trace header, once a poll has seen it.
    pub fn meta(&self) -> Option<&TraceMeta> {
        self.meta.as_ref()
    }

    /// The byte offset the next poll resumes from — everything before it
    /// has already been read and will not be read again.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads newly appended bytes and parses the completed lines. Returns
    /// the new records (the header line, when first seen, lands in
    /// [`TraceFollower::meta`] instead).
    pub fn poll(&mut self) -> std::io::Result<Vec<TraceRecord>> {
        let mut f = std::fs::File::open(&self.path)?;
        let len = f.metadata()?.len();
        if len < self.offset {
            // Truncated behind us (file replaced): start over.
            self.offset = 0;
            self.partial.clear();
            self.meta = None;
        }
        if len == self.offset {
            return Ok(Vec::new());
        }
        f.seek(SeekFrom::Start(self.offset))?;
        let mut buf = String::new();
        f.take(len - self.offset).read_to_string(&mut buf)?;
        self.offset = len;
        self.partial.push_str(&buf);
        let mut records = Vec::new();
        while let Some(nl) = self.partial.find('\n') {
            let line: String = self.partial.drain(..=nl).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if self.meta.is_none() {
                if let Some(meta) = parse_meta_line(line) {
                    self.meta = Some(meta);
                    continue;
                }
            }
            if let Some(r) = parse_record_line(line) {
                records.push(r);
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(superstep: u64, worker: u64, ns: u64) -> TraceRecord {
        TraceRecord {
            superstep,
            worker,
            parse_ns: ns,
            compute_ns: 2 * ns,
            send_ns: ns / 2,
            sync_ns: ns,
            computed: 10,
            messages: 5,
            ..Default::default()
        }
    }

    #[test]
    fn stats_accumulate_per_phase_and_per_superstep() {
        let mut s = TraceStats::new();
        for step in 0..3 {
            for w in 0..2 {
                s.add(&record(step, w, 1000));
            }
        }
        assert_eq!(s.records(), 6);
        assert_eq!(s.supersteps(), 3);
        let cmp = s.phase_snapshot(1);
        assert_eq!(cmp.count, 6);
        // 2000ns falls in a log-linear bucket; midpoint error ≤ 12.5 %.
        let p50 = cmp.percentile(0.5) as f64;
        assert!((p50 - 2000.0).abs() / 2000.0 <= 0.125, "p50 {p50}");
        assert_eq!(s.supersteps[0].computed, 20);
        assert_eq!(s.supersteps[0].total_ns, 2 * (1000 + 2000 + 500 + 1000));
    }

    #[test]
    fn phase_table_lists_all_four_phases() {
        let mut s = TraceStats::new();
        s.add(&record(0, 0, 5000));
        let t = s.phase_table();
        for name in PHASES {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("p99"));
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(120), "120ns");
        assert_eq!(fmt_ns(45_000), "45.0us");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
    }

    #[test]
    fn follower_tails_a_growing_file_across_partial_lines() {
        let dir = std::env::temp_dir().join(format!("cyclops-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow.jsonl");
        let path_s = path.to_str().unwrap();

        // Exactly the lines the streaming sink writes (header + records).
        let header = r#"{"engine":"cyclops","cluster":"2x1","workers":2,"values":false}"#;
        let line = |s: u64, w: u64| {
            let mut out = String::new();
            TraceRecord {
                superstep: s,
                worker: w,
                parse_ns: 1,
                compute_ns: 2,
                send_ns: 3,
                sync_ns: 4,
                computed: 1,
                ..Default::default()
            }
            .to_json(&mut out);
            out
        };

        std::fs::write(&path, format!("{header}\n{}\n", line(0, 0))).unwrap();
        let mut fo = TraceFollower::new(path_s);
        let r = fo.poll().unwrap();
        assert_eq!(r.len(), 1);
        assert!(fo.meta().is_some());
        assert_eq!(fo.meta().unwrap().workers, 2);

        // Append one full line plus the *front half* of another.
        let l2 = line(0, 1);
        let l3 = line(1, 0);
        let (front, back) = l3.split_at(20);
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str(&format!("{l2}\n{front}"));
        std::fs::write(&path, &content).unwrap();
        let r = fo.poll().unwrap();
        assert_eq!(r.len(), 1, "half-written line must not parse yet");
        assert_eq!(r[0].worker, 1);

        // Complete the line; the follower stitches it back together.
        content.push_str(&format!("{back}\n"));
        std::fs::write(&path, &content).unwrap();
        let r = fo.poll().unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].superstep, 1);

        // Nothing new -> empty poll.
        assert!(fo.poll().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn follower_polls_incrementally_from_the_last_byte_offset() {
        // Regression pin for the incremental contract: a poll reads only
        // appended bytes. Proven by corrupting the already-consumed head
        // in-place (same length, so no truncation reset) — if poll re-read
        // from byte 0 it would now fail to parse; instead the appended
        // record comes back cleanly.
        let dir = std::env::temp_dir().join(format!("cyclops-obs-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("incremental.jsonl");
        let path_s = path.to_str().unwrap();

        let header = r#"{"engine":"bsp","cluster":"1x2","workers":2,"values":false}"#;
        let line = |s: u64, w: u64| {
            let mut out = String::new();
            TraceRecord {
                superstep: s,
                worker: w,
                compute_ns: 10,
                ..Default::default()
            }
            .to_json(&mut out);
            out
        };
        std::fs::write(&path, format!("{header}\n{}\n", line(0, 0))).unwrap();
        let mut fo = TraceFollower::new(path_s);
        assert_eq!(fo.offset(), 0);
        assert_eq!(fo.poll().unwrap().len(), 1);
        let consumed = fo.offset();
        assert_eq!(consumed, std::fs::metadata(&path).unwrap().len());

        // Overwrite every consumed byte with garbage of identical length,
        // then append one more record.
        let garbage = "x".repeat(consumed as usize);
        std::fs::write(&path, format!("{garbage}{}\n", line(0, 1))).unwrap();
        let r = fo.poll().unwrap();
        assert_eq!(r.len(), 1, "appended record parses without re-reading");
        assert_eq!(r[0].worker, 1);
        assert!(fo.offset() > consumed, "offset only moves forward");

        // Truncation below the offset resets the follower to byte 0.
        std::fs::write(&path, format!("{header}\n{}\n", line(5, 0))).unwrap();
        let r = fo.poll().unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].superstep, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn phase_record(s: u64, w: u64, prs: u64, cmp: u64, snd: u64, syn: u64) -> TraceRecord {
        TraceRecord {
            superstep: s,
            worker: w,
            parse_ns: prs,
            compute_ns: cmp,
            send_ns: snd,
            sync_ns: syn,
            ..Default::default()
        }
    }

    fn skewed_trace() -> RunTrace {
        RunTrace {
            spans: Vec::new(),
            mem: Vec::new(),
            meta: TraceMeta {
                engine: "cyclops".into(),
                cluster: "1x2x1".into(),
                workers: 2,
                values: false,
            },
            records: vec![
                phase_record(0, 0, 10, 900, 40, 50),
                phase_record(0, 1, 10, 100, 40, 850),
                phase_record(1, 0, 10, 80, 10, 0),
                phase_record(1, 1, 60, 20, 20, 0),
            ],
        }
    }

    #[test]
    fn critical_path_bridge_groups_records_by_superstep() {
        let cp = critical_path(&skewed_trace());
        assert_eq!(cp.supersteps.len(), 2);
        assert_eq!(cp.supersteps[0].straggler, 0);
        assert_eq!(cp.supersteps[0].straggler_phase, CpPhase::Compute);
        assert_eq!(cp.supersteps[0].caused_wait_ns, 850);
        assert_eq!(cp.total_span_ns, 1000 + 100);
    }

    #[test]
    fn hot_vertices_sum_across_supersteps() {
        let mut trace = skewed_trace();
        trace.records[0].hot = vec![(7, 100), (3, 40)];
        trace.records[2].hot = vec![(7, 60), (9, 50)];
        assert_eq!(hot_vertices(&trace, 10), vec![(7, 160), (9, 50), (3, 40)]);
        assert_eq!(hot_vertices(&trace, 1), vec![(7, 160)]);
        assert!(hot_vertices(&skewed_trace(), 10).is_empty());
    }

    #[test]
    fn why_slow_report_names_the_straggler() {
        let report = why_slow_report(&skewed_trace());
        assert!(report.contains("critical path"), "{report}");
        assert!(report.contains("worker 0 CMP"), "{report}");
        assert!(report.contains("straggler ranking"), "{report}");
        assert!(report.contains("--hot K"), "{report}");
        // Deterministic for a fixed trace.
        assert_eq!(report, why_slow_report(&skewed_trace()));
    }

    #[test]
    fn wire_mix_aggregates_and_surfaces_in_reports() {
        let mut trace = skewed_trace();
        trace.records[0].wire_dense = 3;
        trace.records[1].wire_sparse = 2;
        trace.records[2].sparse_fast_path = true;
        trace.records[2].wire_sparse = 1;
        let mix = wire_mix(&trace);
        assert_eq!(
            mix,
            vec![
                WireMixRow {
                    superstep: 0,
                    dense: 3,
                    sparse: 2,
                    fast_workers: 0
                },
                WireMixRow {
                    superstep: 1,
                    dense: 0,
                    sparse: 1,
                    fast_workers: 1
                },
            ]
        );
        let report = why_slow_report(&trace);
        assert!(report.contains("3 dense / 3 sparse batches"), "{report}");
        assert!(
            report.contains("1 of 2 supersteps on the sparse fast path"),
            "{report}"
        );
        let j = why_slow_json(&trace);
        assert!(j.contains("\"wire_mix\": ["), "{j}");
        assert!(j.contains("\"fast_path_workers\": 1"), "{j}");
        // Legacy traces degrade to an explicit absence line / empty array.
        assert!(why_slow_report(&skewed_trace()).contains("no adaptive batches"));
        assert!(why_slow_json(&skewed_trace()).contains("\"wire_mix\": [\n  ]"));
    }

    #[test]
    fn bucketing_aggregates_and_surfaces_in_reports() {
        let mut trace = skewed_trace();
        // Superstep 0 drained bucket 0 over 5 fused rounds; worker 0
        // computed 7 distinct vertices, worker 1 computed 4.
        trace.records[0].fused = 5;
        trace.records[0].bucket = 0;
        trace.records[0].bucket_occupancy = 7;
        trace.records[1].fused = 5;
        trace.records[1].bucket = 0;
        trace.records[1].bucket_occupancy = 4;
        trace.records[2].fused = 2;
        trace.records[2].bucket = 3;
        trace.records[2].bucket_occupancy = 1;
        assert_eq!(
            bucketing(&trace),
            vec![
                BucketRow {
                    superstep: 0,
                    bucket: 0,
                    fused: 5,
                    occupancy: 11
                },
                BucketRow {
                    superstep: 1,
                    bucket: 3,
                    fused: 2,
                    occupancy: 1
                },
            ]
        );
        let report = why_slow_report(&trace);
        assert!(
            report.contains("7 relaxation rounds fused into 2 supersteps"),
            "{report}"
        );
        assert!(report.contains("(5 barrier rounds saved)"), "{report}");
        let j = why_slow_json(&trace);
        assert!(j.contains("\"bucketing\": ["), "{j}");
        assert!(
            j.contains("{\"superstep\": 0, \"bucket\": 0, \"fused\": 5, \"occupancy\": 11}"),
            "{j}"
        );
        // Unbucketed traces degrade to an explicit off line / empty array.
        assert!(why_slow_report(&skewed_trace()).contains("bucketed execution: off"));
        assert!(why_slow_json(&skewed_trace()).contains("\"bucketing\": [\n  ]"));
    }

    #[test]
    fn migrations_aggregate_and_surface_in_reports() {
        let mut trace = skewed_trace();
        // Boundary before superstep 1: 3 masters landed on worker 0, 2 on
        // worker 1. Superstep 0 compute is 900/100ns (imbalance 1.8);
        // superstep 1 is 80/20ns (imbalance 1.6).
        trace.records[2].migrated = 3;
        trace.records[3].migrated = 2;
        let rows = migrations(&trace);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].superstep, 1);
        assert_eq!(rows[0].moved, 5);
        assert!((rows[0].imbalance_before - 1.8).abs() < 1e-9, "{rows:?}");
        assert!((rows[0].imbalance_after - 1.6).abs() < 1e-9, "{rows:?}");
        let report = why_slow_report(&trace);
        assert!(
            report.contains("dynamic migration: 5 masters moved across 1 epoch boundaries"),
            "{report}"
        );
        assert!(report.contains("imb-before"), "{report}");
        let j = why_slow_json(&trace);
        assert!(
            j.contains(
                "{\"superstep\": 1, \"moved\": 5, \"imbalance_before_permille\": 1800, \
                 \"imbalance_after_permille\": 1600}"
            ),
            "{j}"
        );
        // Static runs keep their reports byte-identical: no paragraph, no
        // JSON key at all (goldens from pre-migration traces still match).
        assert!(migrations(&skewed_trace()).is_empty());
        assert!(!why_slow_report(&skewed_trace()).contains("dynamic migration"));
        assert!(!why_slow_json(&skewed_trace()).contains("migrations"));
    }

    #[test]
    fn comm_pairs_aggregate_and_surface_in_reports() {
        use cyclops_net::trace::CommEntry;
        let mut trace = skewed_trace();
        trace.records[0].messages = 12;
        trace.records[0].bytes = 300;
        trace.records[0].comm = vec![
            CommEntry {
                dst: 0,
                messages: 4,
                bytes: 0,
                wire_dense: 0,
                wire_sparse: 0,
            },
            CommEntry {
                dst: 1,
                messages: 8,
                bytes: 300,
                wire_dense: 1,
                wire_sparse: 0,
            },
        ];
        trace.records[2].messages = 5;
        trace.records[2].bytes = 90;
        trace.records[2].comm = vec![CommEntry {
            dst: 1,
            messages: 5,
            bytes: 90,
            wire_dense: 0,
            wire_sparse: 1,
        }];
        let pairs = comm_pairs(&trace);
        assert_eq!(
            pairs,
            vec![
                CommPair {
                    src: 0,
                    dst: 0,
                    messages: 4,
                    bytes: 0,
                    wire_dense: 0,
                    wire_sparse: 0
                },
                CommPair {
                    src: 0,
                    dst: 1,
                    messages: 13,
                    bytes: 390,
                    wire_dense: 1,
                    wire_sparse: 1
                },
            ]
        );
        assert!(comm_mismatches(&trace).is_empty());
        let report = comm_report(&trace);
        assert!(report.contains("13"), "{report}");
        assert!(report.contains("row sums consistent"), "{report}");
        assert!(report.contains("heatmap"), "{report}");
        let ws = why_slow_report(&trace);
        assert!(
            ws.contains("communication matrix: 17 messages / 390 wire bytes over 2 worker pairs"),
            "{ws}"
        );
        let j = why_slow_json(&trace);
        assert!(j.contains("\"comm_consistent\": true"), "{j}");
        assert!(
            j.contains(
                "{\"src\": 0, \"dst\": 1, \"messages\": 13, \"bytes\": 390, \
                 \"wire_dense\": 1, \"wire_sparse\": 1}"
            ),
            "{j}"
        );
        // Legacy traces degrade to an explicit absence line / empty array.
        assert!(why_slow_report(&skewed_trace()).contains("communication matrix: none recorded"));
        assert!(why_slow_json(&skewed_trace()).contains("\"comm\": [\n  ]"));
        assert!(comm_report(&skewed_trace()).contains("no communication matrix recorded"));
    }

    #[test]
    fn comm_mismatch_is_reported_loudly() {
        use cyclops_net::trace::CommEntry;
        let mut trace = skewed_trace();
        trace.records[0].messages = 10;
        trace.records[0].comm = vec![CommEntry {
            dst: 1,
            messages: 7, // != the record's sent counter
            bytes: 0,
            wire_dense: 0,
            wire_sparse: 0,
        }];
        assert_eq!(comm_mismatches(&trace), vec![(0, 0)]);
        assert!(comm_report(&trace).contains("ROW-SUM MISMATCH in 1 records"));
        assert!(why_slow_json(&trace).contains("\"comm_consistent\": false"));
    }

    fn span(kind: SpanKind, worker: u32, start_ns: u64, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            worker,
            thread: 0,
            kind,
            start_ns,
            dur_ns,
            a: 1,
            b: 2,
            c: 3,
        }
    }

    #[test]
    fn chrome_trace_exports_real_spans() {
        let mut trace = skewed_trace();
        trace.spans = vec![
            span(SpanKind::Compute, 0, 1_500, 2_750),
            span(SpanKind::Flush, 1, 4_000, 500),
        ];
        let j = chrome_trace(&trace);
        assert!(j.contains("\"traceEvents\""), "{j}");
        assert!(j.contains("\"ph\":\"X\""), "{j}");
        assert!(
            j.contains("\"ts\":1.500,\"dur\":2.750,\"name\":\"cmp\""),
            "{j}"
        );
        assert!(
            j.contains("\"args\":{\"dst\":1,\"bytes\":2,\"mode\":3}"),
            "{j}"
        );
        assert!(j.contains("\"name\":\"worker 0\""), "{j}");
        assert!(!j.contains("synthetic"), "{j}");
        assert_eq!(j, chrome_trace(&trace));
    }

    #[test]
    fn chrome_trace_synthesizes_from_records_without_spans() {
        let trace = skewed_trace();
        let j = chrome_trace(&trace);
        assert!(j.contains("\"synthetic\":true"), "{j}");
        // Worker 0 superstep 0: prs 10ns at t=0, cmp 900ns at t=10ns.
        assert!(
            j.contains("\"pid\":0,\"tid\":0,\"ts\":0.010,\"dur\":0.900,\"name\":\"cmp\""),
            "{j}"
        );
        // Worker 1's clock is independent of worker 0's.
        assert!(
            j.contains("\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":0.010,\"name\":\"prs\""),
            "{j}"
        );
        assert_eq!(j, chrome_trace(&trace));
    }

    #[test]
    fn timeline_summary_counts_spans_per_kind() {
        let mut trace = skewed_trace();
        let s = timeline_summary(&trace);
        assert!(s.contains("no flight-recorder spans"), "{s}");
        trace.spans = vec![
            span(SpanKind::Compute, 0, 0, 1_000),
            span(SpanKind::Compute, 1, 0, 3_000),
            span(SpanKind::Barrier, 0, 1_000, 500),
        ];
        let s = timeline_summary(&trace);
        assert!(s.contains("3 spans"), "{s}");
        assert!(s.contains("cmp"), "{s}");
        assert!(s.contains("barrier"), "{s}");
        assert!(!s.contains("flush"), "{s}");
    }

    #[test]
    fn why_slow_json_is_deterministic_and_exact() {
        let j = why_slow_json(&skewed_trace());
        assert!(j.contains("\"critical_path_ns\": 1100"), "{j}");
        assert!(j.contains("\"phase\": \"cmp\""), "{j}");
        assert!(j.contains("\"caused_wait_ns\": 850"), "{j}");
        assert_eq!(j, why_slow_json(&skewed_trace()));
    }
}
