//! Run-level observability: phase-latency summaries, sparkline tables, and
//! a live trace follower.
//!
//! This module turns superstep traces (see [`cyclops_net::trace`]) into the
//! human-facing reports behind `cyclops metrics` (post-hoc summary of a
//! trace file) and `cyclops top` (live dashboard tailing a *streaming*
//! trace while the run is still writing it). Latencies are accumulated into
//! the same log-linear histograms the engines feed
//! ([`cyclops_obs::LogLinearHistogram`], ≤ 12.5 % relative bucket error),
//! so quantiles here and quantiles from the in-process registry agree.

pub use cyclops_obs::{
    global, install_global, render_json, render_prometheus, sparkline, sparkline_last, Counter,
    Gauge, HistogramSnapshot, LogLinearHistogram, MetricsRegistry,
};

use cyclops_net::trace::{parse_meta_line, parse_record_line, RunTrace, TraceMeta, TraceRecord};
use std::fmt::Write as _;
use std::io::{Read, Seek, SeekFrom};

/// The four phase names, in the paper's order (§3.5).
pub const PHASES: [&str; 4] = ["prs", "cmp", "snd", "syn"];

/// Streaming accumulator over trace records: per-phase latency histograms
/// plus compact per-superstep aggregates for sparklines. Feed it records
/// with [`TraceStats::add`] — out of order is fine — and render at any
/// point; `cyclops top` keeps one alive across polls.
#[derive(Default)]
pub struct TraceStats {
    /// Phase latency histograms, indexed like [`PHASES`].
    hists: [LogLinearHistogram; 4],
    /// Per-superstep totals, indexed by superstep (summed over workers).
    supersteps: Vec<SuperstepAgg>,
    /// Records absorbed so far.
    records: u64,
}

/// Per-superstep aggregate over workers.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuperstepAgg {
    /// Sum of all four phase latencies over all workers, nanoseconds.
    pub total_ns: u64,
    /// Vertices that ran compute, summed over workers.
    pub computed: u64,
    /// Messages sent, summed over workers.
    pub messages: u64,
    /// Workers that reported this superstep.
    pub workers: u64,
}

impl TraceStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the accumulator from a fully loaded trace.
    pub fn from_trace(trace: &RunTrace) -> Self {
        let mut s = Self::new();
        for r in &trace.records {
            s.add(r);
        }
        s
    }

    /// Absorbs one record.
    pub fn add(&mut self, r: &TraceRecord) {
        self.records += 1;
        for (h, ns) in self
            .hists
            .iter()
            .zip([r.parse_ns, r.compute_ns, r.send_ns, r.sync_ns])
        {
            h.record(ns);
        }
        let s = r.superstep as usize;
        if s >= self.supersteps.len() {
            self.supersteps.resize(s + 1, SuperstepAgg::default());
        }
        let agg = &mut self.supersteps[s];
        agg.total_ns += r.parse_ns + r.compute_ns + r.send_ns + r.sync_ns;
        agg.computed += r.computed;
        agg.messages += r.messages;
        agg.workers += 1;
    }

    /// Records absorbed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Supersteps seen so far (highest superstep index + 1).
    pub fn supersteps(&self) -> usize {
        self.supersteps.len()
    }

    /// Snapshot of one phase's latency histogram (index into [`PHASES`]).
    pub fn phase_snapshot(&self, phase: usize) -> HistogramSnapshot {
        self.hists[phase].snapshot()
    }

    /// The per-phase quantile table: count, mean, p50/p90/p99, max.
    pub fn phase_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<5} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "phase", "records", "mean", "p50", "p90", "p99", "max"
        );
        for (i, name) in PHASES.iter().enumerate() {
            let s = self.hists[i].snapshot();
            if s.is_empty() {
                let _ = writeln!(out, "{name:<5} {:>9} {:>10}", 0, "-");
                continue;
            }
            let _ = writeln!(
                out,
                "{:<5} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
                name,
                s.count,
                fmt_ns(s.mean() as u64),
                fmt_ns(s.percentile(0.50)),
                fmt_ns(s.percentile(0.90)),
                fmt_ns(s.percentile(0.99)),
                fmt_ns(s.max),
            );
        }
        out
    }

    /// Sparkline rows over the last `width` supersteps: wall time per
    /// superstep, computed vertices, and messages sent.
    pub fn sparkline_table(&self, width: usize) -> String {
        let series: [(&str, Vec<u64>); 3] = [
            ("time", self.supersteps.iter().map(|a| a.total_ns).collect()),
            (
                "computed",
                self.supersteps.iter().map(|a| a.computed).collect(),
            ),
            (
                "messages",
                self.supersteps.iter().map(|a| a.messages).collect(),
            ),
        ];
        let mut out = String::new();
        let shown = self.supersteps.len().min(width);
        let _ = writeln!(
            out,
            "last {shown} of {} supersteps (left = older):",
            self.supersteps.len()
        );
        for (name, values) in series {
            let _ = writeln!(out, "{:>9} {}", name, sparkline_last(&values, width));
        }
        out
    }
}

/// Renders nanoseconds with an adaptive unit (`ns`, `us`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// The full `cyclops metrics` report for a loaded trace: run header,
/// per-phase quantile table, and superstep sparklines.
pub fn metrics_report(trace: &RunTrace) -> String {
    let stats = TraceStats::from_trace(trace);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "engine {} on {} ({} workers), {} records over {} supersteps",
        trace.meta.engine,
        trace.meta.cluster,
        trace.meta.workers,
        stats.records(),
        stats.supersteps(),
    );
    out.push_str(&stats.phase_table());
    out.push('\n');
    out.push_str(&stats.sparkline_table(64));
    out
}

/// One frame of the `cyclops top` dashboard.
pub fn top_frame(meta: Option<&TraceMeta>, stats: &TraceStats, width: usize) -> String {
    let mut out = String::new();
    match meta {
        Some(m) => {
            let _ = writeln!(
                out,
                "cyclops top — engine {} on {} ({} workers)",
                m.engine, m.cluster, m.workers
            );
        }
        None => {
            let _ = writeln!(out, "cyclops top — waiting for trace header...");
        }
    }
    let complete = meta
        .map(|m| m.workers > 0 && stats.records() == stats.supersteps() as u64 * m.workers)
        .unwrap_or(false);
    let _ = writeln!(
        out,
        "{} records, {} supersteps{}",
        stats.records(),
        stats.supersteps(),
        if complete { "" } else { " (partial)" },
    );
    out.push('\n');
    out.push_str(&stats.phase_table());
    out.push('\n');
    out.push_str(&stats.sparkline_table(width));
    out
}

/// Tails a streaming trace file incrementally: each [`TraceFollower::poll`]
/// reads only the bytes appended since the previous poll and yields the
/// newly completed records. A partially written last line (the writer
/// flushes whole lines, but a poll can still race the OS) is buffered until
/// its newline arrives.
pub struct TraceFollower {
    path: String,
    offset: u64,
    partial: String,
    meta: Option<TraceMeta>,
}

impl TraceFollower {
    /// A follower for `path`, starting at the beginning of the file.
    pub fn new(path: &str) -> Self {
        TraceFollower {
            path: path.to_string(),
            offset: 0,
            partial: String::new(),
            meta: None,
        }
    }

    /// The trace header, once a poll has seen it.
    pub fn meta(&self) -> Option<&TraceMeta> {
        self.meta.as_ref()
    }

    /// Reads newly appended bytes and parses the completed lines. Returns
    /// the new records (the header line, when first seen, lands in
    /// [`TraceFollower::meta`] instead).
    pub fn poll(&mut self) -> std::io::Result<Vec<TraceRecord>> {
        let mut f = std::fs::File::open(&self.path)?;
        let len = f.metadata()?.len();
        if len < self.offset {
            // Truncated behind us (file replaced): start over.
            self.offset = 0;
            self.partial.clear();
            self.meta = None;
        }
        if len == self.offset {
            return Ok(Vec::new());
        }
        f.seek(SeekFrom::Start(self.offset))?;
        let mut buf = String::new();
        f.take(len - self.offset).read_to_string(&mut buf)?;
        self.offset = len;
        self.partial.push_str(&buf);
        let mut records = Vec::new();
        while let Some(nl) = self.partial.find('\n') {
            let line: String = self.partial.drain(..=nl).collect();
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if self.meta.is_none() {
                if let Some(meta) = parse_meta_line(line) {
                    self.meta = Some(meta);
                    continue;
                }
            }
            if let Some(r) = parse_record_line(line) {
                records.push(r);
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(superstep: u64, worker: u64, ns: u64) -> TraceRecord {
        TraceRecord {
            superstep,
            worker,
            parse_ns: ns,
            compute_ns: 2 * ns,
            send_ns: ns / 2,
            sync_ns: ns,
            computed: 10,
            messages: 5,
            ..Default::default()
        }
    }

    #[test]
    fn stats_accumulate_per_phase_and_per_superstep() {
        let mut s = TraceStats::new();
        for step in 0..3 {
            for w in 0..2 {
                s.add(&record(step, w, 1000));
            }
        }
        assert_eq!(s.records(), 6);
        assert_eq!(s.supersteps(), 3);
        let cmp = s.phase_snapshot(1);
        assert_eq!(cmp.count, 6);
        // 2000ns falls in a log-linear bucket; midpoint error ≤ 12.5 %.
        let p50 = cmp.percentile(0.5) as f64;
        assert!((p50 - 2000.0).abs() / 2000.0 <= 0.125, "p50 {p50}");
        assert_eq!(s.supersteps[0].computed, 20);
        assert_eq!(s.supersteps[0].total_ns, 2 * (1000 + 2000 + 500 + 1000));
    }

    #[test]
    fn phase_table_lists_all_four_phases() {
        let mut s = TraceStats::new();
        s.add(&record(0, 0, 5000));
        let t = s.phase_table();
        for name in PHASES {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
        assert!(t.contains("p99"));
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(120), "120ns");
        assert_eq!(fmt_ns(45_000), "45.0us");
        assert_eq!(fmt_ns(12_000_000), "12.0ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20s");
    }

    #[test]
    fn follower_tails_a_growing_file_across_partial_lines() {
        let dir = std::env::temp_dir().join(format!("cyclops-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("follow.jsonl");
        let path_s = path.to_str().unwrap();

        // Exactly the lines the streaming sink writes (header + records).
        let header = r#"{"engine":"cyclops","cluster":"2x1","workers":2,"values":false}"#;
        let line = |s: u64, w: u64| {
            let mut out = String::new();
            TraceRecord {
                superstep: s,
                worker: w,
                parse_ns: 1,
                compute_ns: 2,
                send_ns: 3,
                sync_ns: 4,
                computed: 1,
                ..Default::default()
            }
            .to_json(&mut out);
            out
        };

        std::fs::write(&path, format!("{header}\n{}\n", line(0, 0))).unwrap();
        let mut fo = TraceFollower::new(path_s);
        let r = fo.poll().unwrap();
        assert_eq!(r.len(), 1);
        assert!(fo.meta().is_some());
        assert_eq!(fo.meta().unwrap().workers, 2);

        // Append one full line plus the *front half* of another.
        let l2 = line(0, 1);
        let l3 = line(1, 0);
        let (front, back) = l3.split_at(20);
        let mut content = std::fs::read_to_string(&path).unwrap();
        content.push_str(&format!("{l2}\n{front}"));
        std::fs::write(&path, &content).unwrap();
        let r = fo.poll().unwrap();
        assert_eq!(r.len(), 1, "half-written line must not parse yet");
        assert_eq!(r[0].worker, 1);

        // Complete the line; the follower stitches it back together.
        content.push_str(&format!("{back}\n"));
        std::fs::write(&path, &content).unwrap();
        let r = fo.poll().unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].superstep, 1);

        // Nothing new -> empty poll.
        assert!(fo.poll().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
