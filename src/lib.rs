//! # Cyclops — distributed graph processing with a distributed immutable view
//!
//! A Rust reproduction of *"Computation and Communication Efficient Graph
//! Processing with Distributed Immutable View"* (Chen et al., HPDC 2014).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — CSR graphs, I/O, generators, the paper's dataset stand-ins,
//! * [`partition`] — hash and multilevel edge-cuts, random/greedy vertex-cuts,
//! * [`net`] — the simulated multicore-cluster substrate (codec, inboxes,
//!   barriers, phase metrics),
//! * [`bsp`] — a Hama/Pregel-style baseline engine,
//! * [`engine`] — the paper's contribution: the Cyclops engine and its
//!   hierarchical CyclopsMT variant,
//! * [`gas`] — a PowerGraph-style Gather-Apply-Scatter baseline engine,
//! * [`algos`] — PageRank, ALS, community detection, and SSSP for all three
//!   engines,
//! * [`obs`] — the metrics/observability layer: log-linear latency
//!   histograms, Prometheus/JSON exposition, trace summaries
//!   (`cyclops metrics`), and live trace following (`cyclops top`).
//!
//! See `README.md` for a tour, `DESIGN.md` for the substitution table mapping
//! the paper's testbed onto this repository, and `EXPERIMENTS.md` for
//! paper-vs-measured numbers of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use cyclops::prelude::*;
//!
//! // A tiny web graph.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 0);
//! b.add_edge(3, 2);
//! let graph = b.build();
//!
//! // Run PageRank on the Cyclops engine over a simulated 2-machine cluster.
//! let cluster = ClusterSpec::flat(2, 1);
//! let partition = HashPartitioner.partition(&graph, cluster.num_workers());
//! let result = run_cyclops_pagerank(&graph, &partition, &cluster, 1e-9, 100);
//! assert!((result.values.iter().sum::<f64>() - 1.0).abs() < 1e-6);
//! ```

pub use cyclops_algos as algos;
pub use cyclops_bsp as bsp;
pub use cyclops_engine as engine;
pub use cyclops_gas as gas;
pub use cyclops_graph as graph;
pub use cyclops_net as net;
pub use cyclops_partition as partition;

pub mod obs;

/// Convenience re-exports covering the common experiment workflow.
pub mod prelude {
    pub use cyclops_algos::pagerank::run_cyclops_pagerank;
    pub use cyclops_graph::{Dataset, Graph, GraphBuilder, VertexId};
    pub use cyclops_net::cluster::ClusterSpec;
    pub use cyclops_partition::{EdgeCutPartitioner, HashPartitioner, MultilevelPartitioner};
}
