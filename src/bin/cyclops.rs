//! `cyclops` — command-line driver for the graph engines.
//!
//! ```text
//! cyclops <command> [options]
//!
//! commands:
//!   pagerank    PageRank ranks
//!   sssp        single-source shortest paths (needs weights or unit)
//!   bfs         hop levels from a source
//!   cc          weakly connected components
//!   cd          community detection (label propagation)
//!   triangles   triangle count
//!   gen         generate a dataset stand-in as an edge list
//!   info        graph statistics
//!   trace-diff  compare two superstep traces: `trace-diff A B [--values]`
//!   metrics     summarize a trace: per-phase p50/p90/p99 + sparklines
//!   top         live dashboard tailing a streaming trace file
//!   why-slow    critical-path profile of a trace: straggler attribution,
//!               hot-vertex table, per-superstep spans (`--json` for machines)
//!   timeline    span-level timeline of a trace; `--chrome OUT.json` exports
//!               Chrome trace-event JSON (chrome://tracing, Perfetto)
//!   comm        worker-pair communication matrix: heatmap + row-sum check
//!   mem         per-worker/per-component peak-memory table from a `--mem`
//!               trace (`--json` for machines)
//!
//! input (choose one):
//!   --input FILE          edge-list file ("src dst [weight]" per line)
//!   --dataset NAME        Amazon|GWeb|LJournal|Wiki|SYN-GL|DBLP|RoadCA
//!   --scale F             dataset scale fraction (default 0.1)
//!
//! execution:
//!   --engine E            cyclops (default) | hama
//!   --machines M          simulated machines (default 2)
//!   --workers W           workers per machine (default 2)
//!   --threads T           compute threads per worker (default 1)
//!   --receivers R         receiver threads per worker (default 1)
//!   --partitioner P       hash (default) | metis
//!   --inbox MODE          hama inbox: global (default) | sharded
//!   --sched S             cyclops compute scheduler: static |
//!                         dynamic (default, degree-weighted chunk claiming)
//!   --sparse-cutoff F     sparse-superstep fast path: engage when the
//!                         frontier is below F of local masters
//!                         (default 0.015; 0 disables; results identical)
//!   --bucket-width D      bucketed (delta-stepping) sssp or hop-ring
//!                         bfs: drain one priority bucket of width D per
//!                         superstep (`auto` tunes from the mean edge
//!                         weight; default 0 = off; results identical)
//!   --bucket-mode M       bucket drain order: det (default, reproducible
//!                         schedule) | fast (arrival order)
//!   --replicate-threshold N|auto  hybrid replication: boundary vertices
//!                         with combined degree below N get no replica —
//!                         their cross-worker edges are messaged directly
//!                         (`auto` picks the threshold minimizing modeled
//!                         update traffic; default 0 = replicate every
//!                         boundary vertex; results identical)
//!   --migrate off|K|auto  runtime hot-vertex migration (cyclops engine,
//!                         pagerank/sssp): every K supersteps move hot
//!                         masters off the most loaded worker and rewire
//!                         the plan incrementally, decided from
//!                         deterministic compute counters (`auto` = every
//!                         8; default off; results bitwise identical)
//!   --skew F              pile the first F-fraction of the vertices onto
//!                         worker 0 before running — a deterministic way
//!                         to manufacture the imbalance --migrate repairs
//!
//! algorithm:
//!   --epsilon F           convergence threshold (pagerank; default 1e-9)
//!   --max-supersteps N    superstep cap (default 10000)
//!   --source V            source vertex (sssp/bfs; default 0)
//!   --sweeps N            label-propagation sweeps (cd; default 30)
//!
//! output:
//!   --output FILE         write per-vertex results ("vertex value" lines)
//!   --top N               print the N best-ranked vertices (default 10)
//!   --seed N              generator seed (gen; default dataset seed)
//!   --stats               print per-superstep statistics
//!   --trace FILE          write a superstep trace (JSON lines;
//!                         pagerank, and sssp/cc on the cyclops engine)
//!   --stream              stream the trace to FILE mid-run (no ring cap)
//!   --values              capture/compare per-publication value digests
//!   --prom FILE           write Prometheus metrics exposition after the run
//!   --listen ADDR         serve GET /metrics + /healthz live during the run
//!   --hot K               per-worker hot-vertex top-K sketch in the trace
//!   --flight              record flight-recorder spans during the run and
//!                         append them to the trace file (needs --trace)
//!   --mem                 arm the tracking allocator and append per-superstep
//!                         memory samples to the trace file (needs --trace;
//!                         results and trace records stay identical)
//!   --chrome FILE         timeline: write Chrome trace-event JSON to FILE
//!   --json                why-slow: emit the report as JSON
//!   --once                top: render one frame and exit
//!   --refresh-ms N        top: refresh interval (default 500)
//! ```

use cyclops::prelude::*;
use cyclops_partition::EdgeCutPartition;
use std::io::Write;
use std::process::ExitCode;

/// Tracking allocator: a pure pass-through over the system allocator (one
/// relaxed bool load per call) until `--mem` arms per-component accounting.
#[global_allocator]
static ALLOC: cyclops::obs::MemAlloc = cyclops::obs::MemAlloc;

/// Parsed command-line options.
#[derive(Clone, Debug)]
struct Options {
    command: String,
    input: Option<String>,
    dataset: Option<String>,
    scale: f64,
    engine: String,
    machines: usize,
    workers: usize,
    threads: usize,
    receivers: usize,
    partitioner: String,
    epsilon: f64,
    max_supersteps: usize,
    source: u32,
    sweeps: usize,
    output: Option<String>,
    top: usize,
    seed: Option<u64>,
    stats: bool,
    trace: Option<String>,
    stream: bool,
    values: bool,
    values_only: bool,
    inbox: String,
    sched: String,
    sparse_cutoff: f64,
    bucket_width: f64,
    bucket_auto: bool,
    bucket_mode: String,
    replicate_threshold: u32,
    replicate_auto: bool,
    migrate_every: usize,
    migrate_auto: bool,
    skew: f64,
    prom: Option<String>,
    listen: Option<String>,
    hot: usize,
    flight: bool,
    mem: bool,
    chrome: Option<String>,
    json: bool,
    once: bool,
    refresh_ms: u64,
    /// Non-flag arguments after the command (trace-diff's two paths).
    positional: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            command: String::new(),
            input: None,
            dataset: None,
            scale: 0.1,
            engine: "cyclops".into(),
            machines: 2,
            workers: 2,
            threads: 1,
            receivers: 1,
            partitioner: "hash".into(),
            epsilon: 1e-9,
            max_supersteps: 10_000,
            source: 0,
            sweeps: 30,
            output: None,
            top: 10,
            seed: None,
            stats: false,
            trace: None,
            stream: false,
            values: false,
            values_only: false,
            inbox: "global".into(),
            sched: "dynamic".into(),
            // Matches the engines' config defaults.
            sparse_cutoff: 0.015,
            // 0 = bucketing off, keeping default traces/output unchanged.
            bucket_width: 0.0,
            bucket_auto: false,
            bucket_mode: "det".into(),
            // 0 = full replication, keeping default runs/traces unchanged.
            replicate_threshold: 0,
            replicate_auto: false,
            // 0 = migration off, keeping default runs byte-identical.
            migrate_every: 0,
            migrate_auto: false,
            // 0 = no artificial skew; the partitioner's assignment stands.
            skew: 0.0,
            prom: None,
            listen: None,
            hot: 0,
            flight: false,
            mem: false,
            chrome: None,
            json: false,
            once: false,
            refresh_ms: 500,
            positional: Vec::new(),
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    opts.command = it
        .next()
        .ok_or_else(|| "missing command; try `cyclops help`".to_string())?
        .clone();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--input" => opts.input = Some(value("--input")?),
            "--dataset" => opts.dataset = Some(value("--dataset")?),
            "--scale" => {
                opts.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--engine" => opts.engine = value("--engine")?,
            "--machines" => {
                opts.machines = value("--machines")?
                    .parse()
                    .map_err(|e| format!("--machines: {e}"))?
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--receivers" => {
                opts.receivers = value("--receivers")?
                    .parse()
                    .map_err(|e| format!("--receivers: {e}"))?
            }
            "--partitioner" => opts.partitioner = value("--partitioner")?,
            "--epsilon" => {
                opts.epsilon = value("--epsilon")?
                    .parse()
                    .map_err(|e| format!("--epsilon: {e}"))?
            }
            "--max-supersteps" => {
                opts.max_supersteps = value("--max-supersteps")?
                    .parse()
                    .map_err(|e| format!("--max-supersteps: {e}"))?
            }
            "--source" => {
                opts.source = value("--source")?
                    .parse()
                    .map_err(|e| format!("--source: {e}"))?
            }
            "--sweeps" => {
                opts.sweeps = value("--sweeps")?
                    .parse()
                    .map_err(|e| format!("--sweeps: {e}"))?
            }
            "--output" => opts.output = Some(value("--output")?),
            "--top" => opts.top = value("--top")?.parse().map_err(|e| format!("--top: {e}"))?,
            "--seed" => {
                opts.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--stream" => opts.stream = true,
            "--values" => opts.values = true,
            "--values-only" => opts.values_only = true,
            "--inbox" => opts.inbox = value("--inbox")?,
            "--sched" => opts.sched = value("--sched")?,
            "--sparse-cutoff" => {
                opts.sparse_cutoff = value("--sparse-cutoff")?
                    .parse()
                    .map_err(|e| format!("--sparse-cutoff: {e}"))?
            }
            "--bucket-width" => {
                let v = value("--bucket-width")?;
                if v == "auto" {
                    opts.bucket_auto = true;
                    opts.bucket_width = 0.0;
                } else {
                    opts.bucket_auto = false;
                    opts.bucket_width = v.parse().map_err(|e| format!("--bucket-width: {e}"))?;
                }
            }
            "--bucket-mode" => opts.bucket_mode = value("--bucket-mode")?,
            "--replicate-threshold" => {
                let v = value("--replicate-threshold")?;
                if v == "auto" {
                    opts.replicate_auto = true;
                    opts.replicate_threshold = 0;
                } else {
                    opts.replicate_auto = false;
                    opts.replicate_threshold = v
                        .parse()
                        .map_err(|e| format!("--replicate-threshold: {e}"))?;
                }
            }
            "--migrate" => {
                let v = value("--migrate")?;
                match v.as_str() {
                    "off" => {
                        opts.migrate_auto = false;
                        opts.migrate_every = 0;
                    }
                    "auto" => {
                        opts.migrate_auto = true;
                        opts.migrate_every = 0;
                    }
                    _ => {
                        opts.migrate_auto = false;
                        opts.migrate_every = v.parse().map_err(|e| format!("--migrate: {e}"))?;
                    }
                }
            }
            "--skew" => {
                opts.skew = value("--skew")?
                    .parse()
                    .map_err(|e| format!("--skew: {e}"))?
            }
            "--prom" => opts.prom = Some(value("--prom")?),
            "--listen" => opts.listen = Some(value("--listen")?),
            "--hot" => opts.hot = value("--hot")?.parse().map_err(|e| format!("--hot: {e}"))?,
            "--flight" => opts.flight = true,
            "--mem" => opts.mem = true,
            "--chrome" => opts.chrome = Some(value("--chrome")?),
            "--json" => opts.json = true,
            "--once" => opts.once = true,
            "--refresh-ms" => {
                opts.refresh_ms = value("--refresh-ms")?
                    .parse()
                    .map_err(|e| format!("--refresh-ms: {e}"))?
            }
            other if !other.starts_with('-') => opts.positional.push(other.to_string()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if opts.machines == 0 || opts.workers == 0 || opts.threads == 0 || opts.receivers == 0 {
        return Err("cluster dimensions must be positive".into());
    }
    if !opts.sparse_cutoff.is_finite() || opts.sparse_cutoff < 0.0 || opts.sparse_cutoff > 1e6 {
        return Err("--sparse-cutoff must be a finite fraction in [0, 1e6]".into());
    }
    if !opts.bucket_auto
        && (!opts.bucket_width.is_finite() || opts.bucket_width < 0.0 || opts.bucket_width > 1e18)
    {
        return Err("--bucket-width must be `auto` or a finite width in [0, 1e18]".into());
    }
    if !matches!(opts.bucket_mode.as_str(), "det" | "fast") {
        return Err(format!(
            "unknown bucket mode {}; expected det or fast",
            opts.bucket_mode
        ));
    }
    if !opts.skew.is_finite() || opts.skew < 0.0 || opts.skew >= 1.0 {
        return Err("--skew must be a fraction in [0, 1)".into());
    }
    // Spans ride on the trace file; without one they would vanish.
    if opts.flight && opts.trace.is_none() {
        return Err("--flight needs --trace FILE".into());
    }
    // Memory samples ride on the trace file the same way.
    if opts.mem && opts.trace.is_none() {
        return Err("--mem needs --trace FILE".into());
    }
    Ok(opts)
}

fn dataset_by_name(name: &str) -> Option<Dataset> {
    Dataset::all()
        .into_iter()
        .find(|d| d.info().name.eq_ignore_ascii_case(name))
}

fn load_graph(opts: &Options) -> Result<Graph, String> {
    match (&opts.input, &opts.dataset) {
        (Some(path), None) => {
            cyclops_graph::io::read_edge_list_file(path).map_err(|e| format!("reading {path}: {e}"))
        }
        (None, Some(name)) => {
            let ds = dataset_by_name(name)
                .ok_or_else(|| format!("unknown dataset {name}; see `cyclops help`"))?;
            Ok(ds.generate_scaled(opts.scale, opts.seed.unwrap_or(ds.default_seed())))
        }
        (None, None) => Err("provide --input FILE or --dataset NAME".into()),
        (Some(_), Some(_)) => Err("--input and --dataset are mutually exclusive".into()),
    }
}

fn build_cluster(opts: &Options) -> ClusterSpec {
    ClusterSpec {
        machines: opts.machines,
        workers_per_machine: opts.workers,
        threads_per_worker: opts.threads,
        receivers_per_worker: opts.receivers,
    }
}

/// Resolves `--replicate-threshold` against the run's actual graph and
/// partition (`auto` models replica-update vs direct-message traffic from
/// the boundary degree histogram and picks the argmin).
fn resolve_replicate_threshold(opts: &Options, g: &Graph, partition: &EdgeCutPartition) -> u32 {
    if opts.replicate_auto {
        let t = partition.auto_replicate_threshold(g);
        println!("replicate-threshold: auto -> {t}");
        t
    } else {
        opts.replicate_threshold
    }
}

/// Prints the hybrid-replication summary line (stable `key=value` fields,
/// greppable by CI) and publishes the replication-mode metrics to the
/// global registry when one is installed.
fn report_hybrid<V, M>(threshold: u32, r: &cyclops_engine::CyclopsResult<V, M>) {
    let ing = &r.ingress;
    println!(
        "hybrid: threshold={} replicated={} messaged={} boundary={} \
         direct_messages={} direct_bytes={} replication_factor={:.6}",
        threshold,
        ing.replicated_boundary,
        ing.messaged_boundary,
        ing.replicated_boundary + ing.messaged_boundary,
        r.direct_messages,
        r.direct_bytes,
        r.replication_factor,
    );
    if let Some(reg) = cyclops::obs::global() {
        let mode = if threshold > 0 { "hybrid" } else { "full" };
        reg.float_gauge("cyclops_replication_factor", &[("mode", mode)])
            .set(r.replication_factor);
        reg.counter("cyclops_direct_messages_total", &[])
            .inc(r.direct_messages as u64);
        reg.counter("cyclops_direct_bytes_total", &[])
            .inc(r.direct_bytes as u64);
    }
}

fn build_partition(opts: &Options, g: &Graph, k: usize) -> Result<EdgeCutPartition, String> {
    let mut p = match opts.partitioner.as_str() {
        "hash" => HashPartitioner.partition(g, k),
        "metis" | "multilevel" => MultilevelPartitioner::default().partition(g, k),
        other => return Err(format!("unknown partitioner {other} (hash|metis)")),
    };
    // `--skew f` piles the first f-fraction of the vertices onto worker 0
    // on top of whatever the partitioner chose — a deterministic way to
    // manufacture the unbalanced assignments the migration planner exists
    // to repair (and the skewed bench panel measures).
    if opts.skew > 0.0 {
        let cut = (opts.skew * g.num_vertices() as f64) as usize;
        for a in p.assignment.iter_mut().take(cut) {
            *a = 0;
        }
    }
    Ok(p)
}

/// Resolves `--migrate` to a concrete epoch length in supersteps (0 = off).
/// `auto` re-plans every 8 supersteps — short enough to catch a drifting
/// hot set, long enough that the per-epoch stop/replan cost amortizes.
fn resolve_migrate_every(opts: &Options) -> usize {
    if opts.migrate_auto {
        println!("migrate: auto -> every 8");
        8
    } else {
        opts.migrate_every
    }
}

/// Prints the migration summary line (stable `key=value` fields, greppable
/// by CI) and publishes the migration metrics to the global registry when
/// one is installed.
fn report_migration(report: &cyclops_engine::MigrationReport) {
    let (before, after) = report.imbalance_span().unwrap_or((0.0, 0.0));
    println!(
        "migration: epochs={} moves={} bytes={} imbalance_before={:.6} imbalance_after={:.6}",
        report.epochs, report.migrations_total, report.migrated_bytes, before, after,
    );
    if let Some(reg) = cyclops::obs::global() {
        reg.counter("cyclops_migrations_total", &[])
            .inc(report.migrations_total as u64);
        reg.counter("cyclops_migrated_bytes", &[])
            .inc(report.migrated_bytes as u64);
        reg.float_gauge("cyclops_compute_imbalance", &[("when", "before")])
            .set(before);
        reg.float_gauge("cyclops_compute_imbalance", &[("when", "after")])
            .set(after);
    }
}

/// Renders a trace I/O error consistently across every trace-reading
/// command (`metrics`, `top`, `trace-diff`, `why-slow`): always prefixed
/// `trace <path>:`, so scripts can match one shape for missing, truncated,
/// and malformed files alike.
fn trace_error(path: &str, e: std::io::Error) -> String {
    match e.kind() {
        std::io::ErrorKind::NotFound => format!("trace {path}: file not found"),
        // read_jsonl's InvalidData messages already lead with the path
        // ("<path>: empty trace" / "bad trace header" / "bad record on
        // line N").
        std::io::ErrorKind::InvalidData => format!("trace {e}"),
        _ => format!("trace {path}: {e}"),
    }
}

/// The one loader every trace-reading command goes through.
fn load_trace(path: &str) -> Result<cyclops_net::trace::RunTrace, String> {
    cyclops_net::trace::read_jsonl(path).map_err(|e| trace_error(path, e))
}

/// Writes `vertex value` lines to `path`.
fn write_output<T: std::fmt::Display>(path: &str, values: &[T]) -> Result<(), String> {
    let mut f = std::io::BufWriter::new(
        std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?,
    );
    for (v, x) in values.iter().enumerate() {
        writeln!(f, "{v} {x}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Builds the optional superstep-trace sink for a run command, honoring
/// `--stream`, `--values` and `--hot`. Call after `install_global` so the
/// hot-vertex gauges resolve.
fn build_sink(
    opts: &Options,
    engine: &str,
    cluster: &ClusterSpec,
) -> Result<Option<cyclops_net::trace::TraceSink>, String> {
    use cyclops_net::trace::TraceSink;
    if opts.stream && opts.trace.is_none() {
        return Err("--stream needs --trace FILE".into());
    }
    if opts.hot > 0 && opts.trace.is_none() {
        // Hot-vertex sketches ride on the trace sink; without one they
        // would be silently dropped.
        return Err("--hot needs --trace FILE".into());
    }
    let _mem = cyclops::obs::mem::MemScope::enter(cyclops::obs::Component::Trace);
    let mut sink = match &opts.trace {
        Some(path) if opts.stream => Some(
            if opts.values {
                TraceSink::streaming_with_values(engine, cluster, path)
            } else {
                TraceSink::streaming(engine, cluster, path)
            }
            .map_err(|e| format!("opening trace {path}: {e}"))?,
        ),
        Some(_) if opts.values => Some(TraceSink::with_values(engine, cluster)),
        Some(_) => Some(TraceSink::new(engine, cluster)),
        None => None,
    };
    if opts.hot > 0 {
        sink = sink.map(|s| s.with_hot_k(opts.hot));
    }
    // Panic safety: if the run dies before `finish_sink`, the sink's Drop
    // guard still writes the buffered trace tail (plus any flight spans and
    // memory samples) to the trace path.
    if let Some(path) = &opts.trace {
        sink = sink.map(|s| s.flush_on_drop(path));
    }
    Ok(sink)
}

/// Writes (buffered) or closes (streaming) the trace after the run.
fn finish_sink(opts: &Options, sink: Option<cyclops_net::trace::TraceSink>) -> Result<(), String> {
    let (Some(path), Some(mut sink)) = (&opts.trace, sink) else {
        return Ok(());
    };
    if sink.is_streaming() {
        let summary = sink
            .finish()
            .map_err(|e| format!("closing trace {path}: {e}"))?;
        println!(
            "trace streamed to {path}: {} records ({} deferred)",
            summary.records_written, summary.records_deferred
        );
    } else {
        sink.write_jsonl(path)
            .map_err(|e| format!("writing trace {path}: {e}"))?;
        println!("trace written to {path}");
    }
    // Spans drain only after the engine's scoped threads have joined (the
    // run returned), so every ring is quiescent here.
    if opts.flight {
        if let Some(fr) = cyclops::obs::flight() {
            let dump = fr.drain();
            let n = cyclops_net::trace::append_spans_jsonl(path, &dump.spans)
                .map_err(|e| format!("appending spans to {path}: {e}"))?;
            if dump.dropped > 0 {
                eprintln!(
                    "warning: flight recorder dropped {} spans to ring wraparound",
                    dump.dropped
                );
            }
            println!("{n} flight-recorder spans appended to {path}");
        }
    }
    // Memory samples drain the same way: the engine threads have joined, so
    // the per-barrier samples are complete.
    if opts.mem {
        let samples = cyclops::obs::mem::take_samples();
        let n = cyclops_net::trace::append_mem_jsonl(path, &samples)
            .map_err(|e| format!("appending memory samples to {path}: {e}"))?;
        println!("{n} memory samples appended to {path}");
    }
    Ok(())
}

fn print_stats(stats: &[cyclops_net::SuperstepStats]) {
    println!("superstep  active  messages  bytes");
    for s in stats {
        println!(
            "{:>9}  {:>6}  {:>8}  {:>5}",
            s.superstep, s.active_vertices, s.messages_sent, s.bytes_sent
        );
    }
}

fn run(opts: &Options) -> Result<(), String> {
    if opts.command == "help" || opts.command == "--help" || opts.command == "-h" {
        // The module doc is the manual.
        print!("{}", HELP);
        return Ok(());
    }
    const COMMANDS: &[&str] = &[
        "pagerank",
        "sssp",
        "bfs",
        "cc",
        "cd",
        "triangles",
        "gen",
        "info",
        "trace-diff",
        "metrics",
        "top",
        "why-slow",
        "timeline",
        "comm",
        "mem",
    ];
    if !COMMANDS.contains(&opts.command.as_str()) {
        return Err(format!(
            "unknown command {}; try `cyclops help`",
            opts.command
        ));
    }

    // `trace-diff` compares two trace files and exits.
    if opts.command == "trace-diff" {
        let [a, b] = opts.positional.as_slice() else {
            return Err(
                "trace-diff needs two trace files: trace-diff A B [--values|--values-only]".into(),
            );
        };
        let ta = load_trace(a)?;
        let tb = load_trace(b)?;
        let want_values = opts.values || opts.values_only;
        let values = want_values && ta.meta.values && tb.meta.values;
        if want_values && !values {
            eprintln!("warning: values requested but at least one trace lacks digests");
        }
        // `--values-only` compares only the result-determined columns
        // (frontier, computed, publications, aggregates), skipping traffic
        // counters — the mode that can certify two hybrid-replication runs
        // at different thresholds computed bitwise-identical values even
        // though their wire traffic legitimately differs.
        let divergence = if opts.values_only {
            cyclops_net::trace::diff::first_value_divergence(&ta, &tb)
        } else {
            cyclops_net::trace::diff::first_divergence(&ta, &tb, values)
        };
        match divergence {
            None => println!(
                "traces agree{}: {} supersteps x {} workers",
                if opts.values_only {
                    " (values only)"
                } else {
                    ""
                },
                ta.supersteps(),
                ta.meta.workers
            ),
            Some(d) => {
                println!(
                    "first divergence at superstep {} worker {}: {} = {} vs {}",
                    d.superstep, d.worker, d.counter, d.a, d.b
                );
                if let Some(v) = d.vertex {
                    println!("first divergent vertex: {v}");
                }
                // Non-zero exit so CI can gate on agreement, matching
                // `cyclops comm`'s consistency-check semantics.
                return Err("traces diverge".into());
            }
        }
        return Ok(());
    }

    // `metrics` summarizes a trace file and exits.
    if opts.command == "metrics" {
        let [path] = opts.positional.as_slice() else {
            return Err("metrics needs one trace file: metrics TRACE.jsonl".into());
        };
        let trace = load_trace(path)?;
        print!("{}", cyclops::obs::metrics_report(&trace));
        return Ok(());
    }

    // `why-slow` runs the critical-path profile and exits.
    if opts.command == "why-slow" {
        let [path] = opts.positional.as_slice() else {
            return Err("why-slow needs one trace file: why-slow TRACE.jsonl [--json]".into());
        };
        let trace = load_trace(path)?;
        if opts.json {
            print!("{}", cyclops::obs::why_slow_json(&trace));
        } else {
            print!("{}", cyclops::obs::why_slow_report(&trace));
        }
        return Ok(());
    }

    // `mem` renders the per-worker/per-component peak-memory table from a
    // `--mem` trace's samples and exits.
    if opts.command == "mem" {
        let [path] = opts.positional.as_slice() else {
            return Err("mem needs one trace file: mem TRACE.jsonl [--json]".into());
        };
        let trace = load_trace(path)?;
        if opts.json {
            print!("{}", cyclops::obs::mem_json(&trace));
        } else {
            print!("{}", cyclops::obs::mem_report(&trace));
        }
        return Ok(());
    }

    // `timeline` summarizes spans and optionally exports Chrome trace JSON.
    if opts.command == "timeline" {
        let [path] = opts.positional.as_slice() else {
            return Err(
                "timeline needs one trace file: timeline TRACE.jsonl [--chrome OUT.json]".into(),
            );
        };
        let trace = load_trace(path)?;
        print!("{}", cyclops::obs::timeline_summary(&trace));
        if let Some(out) = &opts.chrome {
            std::fs::write(out, cyclops::obs::chrome_trace(&trace))
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!("chrome trace written to {out} (open in chrome://tracing or ui.perfetto.dev)");
        }
        return Ok(());
    }

    // `comm` renders the worker-pair communication matrix and verifies it.
    if opts.command == "comm" {
        let [path] = opts.positional.as_slice() else {
            return Err("comm needs one trace file: comm TRACE.jsonl".into());
        };
        let trace = load_trace(path)?;
        print!("{}", cyclops::obs::comm_report(&trace));
        if !cyclops::obs::comm_mismatches(&trace).is_empty() {
            return Err(format!(
                "trace {path}: comm row sums disagree with sent counters"
            ));
        }
        return Ok(());
    }

    // `top` tails a (possibly still growing) trace file.
    if opts.command == "top" {
        let [path] = opts.positional.as_slice() else {
            return Err(
                "top needs one trace file: top TRACE.jsonl [--once] [--refresh-ms N]".into(),
            );
        };
        // One-shot mode reads a complete trace: validate it through the
        // shared loader so a missing/empty/corrupt file fails exactly like
        // `metrics` or `why-slow` would. Live mode keeps the tolerant
        // follower — an empty or mid-write file just means "no data yet".
        if opts.once {
            let trace = load_trace(path)?;
            let mut stats = cyclops::obs::TraceStats::new();
            for r in &trace.records {
                stats.add(r);
            }
            print!("{}", cyclops::obs::top_frame(Some(&trace.meta), &stats, 64));
            return Ok(());
        }
        let mut follower = cyclops::obs::TraceFollower::new(path);
        let mut stats = cyclops::obs::TraceStats::new();
        loop {
            for r in follower.poll().map_err(|e| trace_error(path, e))? {
                stats.add(&r);
            }
            let frame = cyclops::obs::top_frame(follower.meta(), &stats, 64);
            // Clear the screen and redraw, like top(1).
            print!("\x1b[2J\x1b[H{frame}");
            std::io::stdout().flush().ok();
            std::thread::sleep(std::time::Duration::from_millis(opts.refresh_ms.max(50)));
        }
    }

    // `gen` writes an edge list and exits.
    if opts.command == "gen" {
        let name = opts.dataset.as_deref().ok_or("gen needs --dataset")?;
        let ds = dataset_by_name(name).ok_or_else(|| format!("unknown dataset {name}"))?;
        let g = ds.generate_scaled(opts.scale, opts.seed.unwrap_or(ds.default_seed()));
        let path = opts.output.as_deref().ok_or("gen needs --output FILE")?;
        cyclops_graph::io::write_edge_list_file(&g, path).map_err(|e| e.to_string())?;
        println!(
            "wrote {}: {} vertices, {} edges",
            path,
            g.num_vertices(),
            g.num_edges()
        );
        return Ok(());
    }

    // Arm the tracking allocator before the graph is even loaded, so every
    // long-lived structure (graph, plan, replicas, slots, pools) is
    // attributed. One-way: disarming mid-run would let frees drift the live
    // counters negative.
    if opts.mem {
        cyclops::obs::mem::arm();
    }
    let g = {
        let _mem = cyclops::obs::mem::MemScope::enter(cyclops::obs::Component::Graph);
        load_graph(opts)?
    };
    if opts.command == "info" {
        let s = cyclops_graph::stats::degree_stats(&g);
        println!("vertices: {}", g.num_vertices());
        println!("edges: {}", g.num_edges());
        println!("weighted: {}", g.is_weighted());
        println!("avg degree: {:.2}", s.avg_degree);
        println!("max out-degree: {}", s.max_out_degree);
        println!("max in-degree: {}", s.max_in_degree);
        println!("sinks: {:.1}%", 100.0 * s.sink_fraction);
        println!("sources: {:.1}%", 100.0 * s.source_fraction);
        return Ok(());
    }

    let cluster = build_cluster(opts);
    let partition = build_partition(opts, &g, cluster.num_workers())?;
    let use_hama = match opts.engine.as_str() {
        "cyclops" => false,
        "hama" | "bsp" => true,
        other => return Err(format!("unknown engine {other} (cyclops|hama)")),
    };
    let inbox = match opts.inbox.as_str() {
        "global" | "global_queue" => cyclops_net::InboxMode::GlobalQueue,
        "sharded" => cyclops_net::InboxMode::Sharded,
        other => return Err(format!("unknown inbox mode {other} (global|sharded)")),
    };
    let sched = match opts.sched.as_str() {
        "static" => cyclops_engine::Sched::Static,
        "dynamic" => cyclops_engine::Sched::Dynamic,
        other => return Err(format!("unknown scheduler {other} (static|dynamic)")),
    };
    let hybrid_requested = opts.replicate_auto || opts.replicate_threshold > 0;
    if hybrid_requested && use_hama {
        return Err("--replicate-threshold needs --engine cyclops".into());
    }
    if hybrid_requested && !matches!(opts.command.as_str(), "pagerank" | "sssp" | "cc") {
        return Err("--replicate-threshold applies to pagerank, sssp, and cc".into());
    }
    let migrate_requested = opts.migrate_auto || opts.migrate_every > 0;
    if migrate_requested && use_hama {
        return Err("--migrate needs --engine cyclops".into());
    }
    // Aggregate-free programs only: migration regroups the per-worker float
    // reductions, so a program folding a global aggregate could see its
    // convergence decision drift (see `run_cyclops_migrated_traced`).
    if migrate_requested && !matches!(opts.command.as_str(), "pagerank" | "sssp") {
        return Err("--migrate applies to pagerank and sssp".into());
    }
    // Migration pauses the classic loop on checkpoint epochs; the bucketed
    // settle has its own superstep structure.
    if migrate_requested && (opts.bucket_auto || opts.bucket_width > 0.0) {
        return Err("--migrate and --bucket-width are mutually exclusive".into());
    }
    // Install the global metrics registry *before* the engines construct
    // their transports/barriers, so instrumentation handles resolve.
    if opts.prom.is_some() || opts.listen.is_some() {
        cyclops::obs::install_global();
    }
    // Likewise the flight recorder: transports resolve their per-lane span
    // rings once, at construction.
    if opts.flight {
        cyclops::obs::install_flight();
    }
    // The scrape endpoint serves the live registry for the whole run; the
    // server thread shuts down when `server` drops at the end of `run`.
    let server = match &opts.listen {
        Some(addr) => {
            let reg = cyclops::obs::global().expect("registry installed above");
            let srv = cyclops::obs::MetricsServer::start(addr.as_str(), reg)
                .map_err(|e| format!("listening on {addr}: {e}"))?;
            println!("metrics listening on http://{}/metrics", srv.addr());
            Some(srv)
        }
        None => None,
    };
    if (opts.source as usize) >= g.num_vertices() && matches!(opts.command.as_str(), "sssp" | "bfs")
    {
        return Err(format!(
            "--source {} out of range ({} vertices)",
            opts.source,
            g.num_vertices()
        ));
    }

    match opts.command.as_str() {
        "pagerank" => {
            let engine = if use_hama { "bsp" } else { "cyclops" };
            let sink = build_sink(opts, engine, &cluster)?;
            let (values, supersteps, messages, stats) = if use_hama {
                let r = cyclops_bsp::run_bsp_traced(
                    &cyclops_algos::pagerank::BspPageRank {
                        epsilon: opts.epsilon,
                    },
                    &g,
                    &partition,
                    &cyclops_bsp::BspConfig {
                        cluster,
                        max_supersteps: opts.max_supersteps,
                        use_combiner: true,
                        track_redundant: true,
                        inbox,
                        sparse_cutoff: opts.sparse_cutoff,
                        ..Default::default()
                    },
                    sink.as_ref(),
                );
                (r.values, r.supersteps, r.counters.messages, r.stats)
            } else {
                let threshold = resolve_replicate_threshold(opts, &g, &partition);
                let every = resolve_migrate_every(opts);
                let r = if every > 0 {
                    let (r, migration) = cyclops_algos::pagerank::run_cyclops_pagerank_migrated(
                        &g,
                        &partition,
                        &cluster,
                        opts.epsilon,
                        opts.max_supersteps,
                        sched,
                        opts.sparse_cutoff,
                        threshold,
                        every,
                        cyclops_partition::MigrationConfig::default(),
                        sink.as_ref(),
                    );
                    report_migration(&migration);
                    r
                } else {
                    cyclops_algos::pagerank::run_cyclops_pagerank_tuned(
                        &g,
                        &partition,
                        &cluster,
                        opts.epsilon,
                        opts.max_supersteps,
                        sched,
                        opts.sparse_cutoff,
                        threshold,
                        sink.as_ref(),
                    )
                };
                report_hybrid(threshold, &r);
                (r.values, r.supersteps, r.counters.messages, r.stats)
            };
            finish_sink(opts, sink)?;
            println!("pagerank: {supersteps} supersteps, {messages} messages");
            let mut ranked: Vec<(u32, f64)> = values
                .iter()
                .enumerate()
                .map(|(v, &r)| (v as u32, r))
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            for (v, r) in ranked.iter().take(opts.top) {
                println!("  {v} {r:.6e}");
            }
            if opts.stats {
                print_stats(&stats);
            }
            if let Some(path) = &opts.output {
                write_output(path, &values)?;
            }
        }
        "sssp" => {
            if opts.trace.is_some() && use_hama {
                return Err("--trace with sssp needs --engine cyclops".into());
            }
            let sink = if use_hama {
                None
            } else {
                build_sink(opts, "cyclops", &cluster)?
            };
            // `auto` reaches the runners as width 0, which they resolve from
            // the mean edge weight; an explicit positive width passes through.
            let bucketed = opts.bucket_auto || opts.bucket_width > 0.0;
            let bucket_mode = match opts.bucket_mode.as_str() {
                "fast" => cyclops_net::BucketMode::Fast,
                _ => cyclops_net::BucketMode::Det,
            };
            let (values, supersteps) = if use_hama {
                let r = if bucketed {
                    cyclops_algos::sssp::run_bsp_sssp_bucketed(
                        &g,
                        &partition,
                        &cluster,
                        opts.source,
                        opts.max_supersteps,
                        opts.bucket_width,
                        bucket_mode,
                    )
                } else {
                    cyclops_algos::sssp::run_bsp_sssp(
                        &g,
                        &partition,
                        &cluster,
                        opts.source,
                        opts.max_supersteps,
                    )
                };
                (r.values, r.supersteps)
            } else if bucketed {
                let threshold = resolve_replicate_threshold(opts, &g, &partition);
                let r = cyclops_algos::sssp::run_cyclops_sssp_bucketed(
                    &g,
                    &partition,
                    &cluster,
                    opts.source,
                    opts.max_supersteps,
                    opts.bucket_width,
                    bucket_mode,
                    threshold,
                    sink.as_ref(),
                );
                report_hybrid(threshold, &r);
                (r.values, r.supersteps)
            } else {
                let threshold = resolve_replicate_threshold(opts, &g, &partition);
                let every = resolve_migrate_every(opts);
                let r = if every > 0 {
                    let (r, migration) = cyclops_algos::sssp::run_cyclops_sssp_migrated(
                        &g,
                        &partition,
                        &cluster,
                        opts.source,
                        opts.max_supersteps,
                        sched,
                        opts.sparse_cutoff,
                        threshold,
                        every,
                        cyclops_partition::MigrationConfig::default(),
                        sink.as_ref(),
                    );
                    report_migration(&migration);
                    r
                } else {
                    cyclops_algos::sssp::run_cyclops_sssp_tuned(
                        &g,
                        &partition,
                        &cluster,
                        opts.source,
                        opts.max_supersteps,
                        sched,
                        opts.sparse_cutoff,
                        threshold,
                        sink.as_ref(),
                    )
                };
                report_hybrid(threshold, &r);
                (r.values, r.supersteps)
            };
            finish_sink(opts, sink)?;
            let reachable = values.iter().filter(|d| d.is_finite()).count();
            println!(
                "sssp from {}: {supersteps} supersteps, {reachable}/{} reachable",
                opts.source,
                g.num_vertices()
            );
            if let Some(path) = &opts.output {
                write_output(path, &values)?;
            }
        }
        "bfs" => {
            let bucketed = opts.bucket_auto || opts.bucket_width > 0.0;
            if bucketed && use_hama {
                return Err("--bucket-width with bfs needs --engine cyclops".into());
            }
            let (values, supersteps) = if use_hama {
                let r = cyclops_algos::bfs::run_bsp_bfs(&g, &partition, &cluster, opts.source);
                (r.values, r.supersteps)
            } else if bucketed {
                // `auto` reaches the runner as width 0, which it resolves
                // to one hop ring per bucket.
                let bucket_mode = match opts.bucket_mode.as_str() {
                    "fast" => cyclops_net::BucketMode::Fast,
                    _ => cyclops_net::BucketMode::Det,
                };
                let r = cyclops_algos::bfs::run_cyclops_bfs_bucketed(
                    &g,
                    &partition,
                    &cluster,
                    opts.source,
                    opts.bucket_width,
                    bucket_mode,
                );
                (r.values, r.supersteps)
            } else {
                let r = cyclops_algos::bfs::run_cyclops_bfs(&g, &partition, &cluster, opts.source);
                (r.values, r.supersteps)
            };
            let reached = values.iter().filter(|&&l| l != u32::MAX).count();
            let depth = values
                .iter()
                .filter(|&&l| l != u32::MAX)
                .max()
                .copied()
                .unwrap_or(0);
            println!(
                "bfs from {}: {supersteps} supersteps, {reached}/{} reached, depth {depth}",
                opts.source,
                g.num_vertices()
            );
            if let Some(path) = &opts.output {
                write_output(path, &values)?;
            }
        }
        "cc" => {
            if opts.trace.is_some() && use_hama {
                return Err("--trace with cc needs --engine cyclops".into());
            }
            let sym = cyclops_algos::cc::symmetrize(&g);
            let partition = build_partition(opts, &sym, cluster.num_workers())?;
            let sink = if use_hama {
                None
            } else {
                build_sink(opts, "cyclops", &cluster)?
            };
            let values = if use_hama {
                cyclops_algos::cc::run_bsp_cc(&sym, &partition, &cluster).values
            } else {
                // Resolved against the symmetrized graph — the one the run
                // actually partitions and replicates.
                let threshold = resolve_replicate_threshold(opts, &sym, &partition);
                let r = cyclops_algos::cc::run_cyclops_cc_tuned(
                    &sym,
                    &partition,
                    &cluster,
                    sched,
                    opts.sparse_cutoff,
                    threshold,
                    sink.as_ref(),
                );
                report_hybrid(threshold, &r);
                r.values
            };
            finish_sink(opts, sink)?;
            let mut labels = values.clone();
            labels.sort_unstable();
            labels.dedup();
            println!("cc: {} components", labels.len());
            if let Some(path) = &opts.output {
                write_output(path, &values)?;
            }
        }
        "cd" => {
            let values = if use_hama {
                cyclops_algos::cd::run_bsp_cd(&g, &partition, &cluster, opts.sweeps + 1).values
            } else {
                cyclops_algos::cd::run_cyclops_cd(&g, &partition, &cluster, opts.sweeps).values
            };
            let mut sizes: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
            for &l in &values {
                *sizes.entry(l).or_insert(0) += 1;
            }
            println!(
                "cd: {} communities after {} sweeps",
                sizes.len(),
                opts.sweeps
            );
            let mut by_size: Vec<(u32, usize)> = sizes.into_iter().collect();
            by_size.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
            for (label, n) in by_size.iter().take(opts.top) {
                println!("  community {label}: {n} members");
            }
            if let Some(path) = &opts.output {
                write_output(path, &values)?;
            }
        }
        "triangles" => {
            let sym = cyclops_algos::cc::symmetrize(&g);
            let partition = build_partition(opts, &sym, cluster.num_workers())?;
            let values = if use_hama {
                cyclops_algos::triangles::run_bsp_triangles(&sym, &partition, &cluster).values
            } else {
                cyclops_algos::triangles::run_cyclops_triangles(&sym, &partition, &cluster).values
            };
            println!("triangles: {}", values.iter().sum::<u64>());
        }
        other => return Err(format!("unknown command {other}; try `cyclops help`")),
    }
    if let Some(path) = &opts.prom {
        let reg = cyclops::obs::global().expect("registry installed above");
        std::fs::write(path, cyclops::obs::render_prometheus(reg))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("metrics exposition written to {path}");
    }
    drop(server); // stop the scrape endpoint after the final exposition
    Ok(())
}

const HELP: &str = "cyclops — distributed graph processing with distributed immutable view

usage: cyclops <command> [options]

commands:
  pagerank | sssp | bfs | cc | cd | triangles | gen | info
  trace-diff | metrics | top | why-slow | timeline | comm | mem | help

input:       --input FILE | --dataset NAME [--scale F] [--seed N]
             datasets: Amazon GWeb LJournal Wiki SYN-GL DBLP RoadCA
execution:   --engine cyclops|hama  --machines M --workers W
             --threads T --receivers R  --partitioner hash|metis
             --inbox global|sharded (hama)
             --sched static|dynamic (cyclops; dynamic = degree-weighted
             chunk claiming, bitwise-identical results to static)
             --sparse-cutoff F  sparse-superstep fast path when the
             frontier is below F of local masters (default 0.015;
             0 disables; results bitwise identical either way)
             --bucket-width D|auto  bucketed (delta-stepping) sssp
             or hop-ring bfs: each superstep drains one priority
             bucket of width D, fusing the relaxation rounds behind a
             single barrier (auto = 8x mean edge weight for sssp, one
             hop ring for bfs; default 0 = off; results bitwise
             identical)
             --bucket-mode det|fast  det (default) fixes the in-bucket
             drain order for reproducible traces; fast keeps arrival
             order
             --replicate-threshold N|auto  hybrid replication (cyclops
             pagerank/sssp/cc): boundary vertices with combined degree
             below N get no replica — their cross-worker edges receive
             direct messages instead (auto = modeled-traffic argmin;
             default 0 = replicate every boundary vertex; results
             bitwise identical at every threshold)
             --migrate off|K|auto  runtime hot-vertex migration (cyclops
             pagerank/sssp): every K supersteps move hot masters off the
             most loaded worker and rewire the plan incrementally,
             decided from deterministic compute counters — never clocks
             (auto = every 8; default off; results bitwise identical)
             --skew F  pile the first F-fraction of the vertices onto
             worker 0 before running (deterministic imbalance for
             migration experiments; F in [0, 1))
algorithm:   --epsilon F  --max-supersteps N  --source V  --sweeps N
output:      --output FILE  --top N  --stats
tracing:     --trace FILE (pagerank; sssp/cc on cyclops)  --stream  --values
             --hot K  per-worker hot-vertex top-K sketch in the trace
             --prom FILE  writes Prometheus metrics after the run
             --listen ADDR  serves GET /metrics + /healthz live during
             the run (e.g. --listen 127.0.0.1:9184)
             trace-diff A B [--values]  reports the first divergent
             superstep/worker/counter between two runs and exits
             non-zero on divergence; --values-only compares only
             result-determined columns (certifies two hybrid-threshold
             runs computed identical values even though their traffic
             counters differ)
             metrics TRACE.jsonl  per-phase p50/p90/p99 + sparklines
             top TRACE.jsonl [--once] [--refresh-ms N]  live dashboard
             why-slow TRACE.jsonl [--json]  critical-path profile:
             straggler attribution + hot-vertex table + comm matrix
             --flight  record span-level flight-recorder events during
             the run and append them to the trace (needs --trace)
             --mem  arm the tracking allocator: per-worker/per-component
             live/peak bytes (+ VmRSS) sampled at each superstep barrier
             and appended to the trace (needs --trace; results and trace
             records stay bitwise identical)
             mem TRACE.jsonl [--json]  per-worker/per-component peak
             table from a --mem trace's samples
             timeline TRACE.jsonl [--chrome OUT.json]  span summary;
             --chrome exports Chrome trace-event JSON (chrome://tracing,
             ui.perfetto.dev); traces without spans synthesize phase
             spans from the deterministic counters
             comm TRACE.jsonl  worker-pair communication matrix heatmap;
             exits non-zero when row sums disagree with sent counters

examples:
  cyclops pagerank --dataset GWeb --scale 0.2 --machines 3 --workers 2
  cyclops sssp --dataset RoadCA --source 5 --partitioner metis
  cyclops sssp --dataset RoadCA --bucket-width auto --bucket-mode det
  cyclops pagerank --dataset GWeb --replicate-threshold auto
  cyclops pagerank --dataset GWeb --skew 0.6 --migrate auto
  cyclops gen --dataset Wiki --scale 0.1 --output wiki.txt
  cyclops cc --input wiki.txt --engine hama
  cyclops pagerank --dataset Amazon --trace run-a.jsonl --values
  cyclops trace-diff run-a.jsonl run-b.jsonl --values
  cyclops pagerank --dataset Amazon --trace run.jsonl --stream --prom run.prom
  cyclops pagerank --dataset GWeb --trace run.jsonl --hot 8 --listen 127.0.0.1:9184
  cyclops metrics run.jsonl
  cyclops top run.jsonl --once
  cyclops why-slow run.jsonl --json
  cyclops pagerank --dataset Amazon --trace run.jsonl --flight
  cyclops timeline run.jsonl --chrome run.chrome.json
  cyclops comm run.jsonl
  cyclops pagerank --dataset Amazon --trace run.jsonl --mem
  cyclops mem run.jsonl --json
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|opts| run(&opts)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let o = parse_args(&args(
            "pagerank --dataset GWeb --scale 0.2 --engine hama --machines 3 \
             --workers 4 --threads 2 --receivers 2 --partitioner metis \
             --epsilon 1e-6 --max-supersteps 50 --top 3 --stats",
        ))
        .unwrap();
        assert_eq!(o.command, "pagerank");
        assert_eq!(o.dataset.as_deref(), Some("GWeb"));
        assert_eq!(o.scale, 0.2);
        assert_eq!(o.engine, "hama");
        assert_eq!(o.machines, 3);
        assert_eq!(o.workers, 4);
        assert_eq!(o.threads, 2);
        assert_eq!(o.receivers, 2);
        assert_eq!(o.partitioner, "metis");
        assert_eq!(o.epsilon, 1e-6);
        assert_eq!(o.max_supersteps, 50);
        assert_eq!(o.top, 3);
        assert!(o.stats);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(parse_args(&args("pagerank --bogus")).is_err());
        assert!(parse_args(&args("pagerank --scale")).is_err());
        assert!(parse_args(&args("")).is_err());
    }

    #[test]
    fn parses_trace_flags_and_positionals() {
        let o = parse_args(&args("pagerank --dataset GWeb --trace out.jsonl --values")).unwrap();
        assert_eq!(o.trace.as_deref(), Some("out.jsonl"));
        assert!(o.values);
        let o = parse_args(&args("trace-diff a.jsonl b.jsonl --values")).unwrap();
        assert_eq!(o.command, "trace-diff");
        assert_eq!(o.positional, vec!["a.jsonl", "b.jsonl"]);
        assert!(o.values);
    }

    #[test]
    fn parses_metrics_flags() {
        let o = parse_args(&args(
            "pagerank --dataset GWeb --trace out.jsonl --stream --prom out.prom \
             --engine hama --inbox sharded",
        ))
        .unwrap();
        assert!(o.stream);
        assert_eq!(o.prom.as_deref(), Some("out.prom"));
        assert_eq!(o.inbox, "sharded");
        let o = parse_args(&args("pagerank --dataset GWeb --sched static")).unwrap();
        assert_eq!(o.sched, "static");
        let o = parse_args(&args("pagerank --dataset GWeb")).unwrap();
        assert_eq!(o.sched, "dynamic");
        assert_eq!(o.sparse_cutoff, 0.015);
        let o = parse_args(&args("sssp --dataset RoadCA --sparse-cutoff 0.05")).unwrap();
        assert_eq!(o.sparse_cutoff, 0.05);
        let o = parse_args(&args("sssp --dataset RoadCA --sparse-cutoff 0")).unwrap();
        assert_eq!(o.sparse_cutoff, 0.0);
        assert!(parse_args(&args("sssp --sparse-cutoff -1")).is_err());
        assert!(parse_args(&args("sssp --sparse-cutoff nope")).is_err());
        assert!(parse_args(&args("sssp --sparse-cutoff inf")).is_err());
        assert!(parse_args(&args("sssp --sparse-cutoff 1e9")).is_err());
        let o = parse_args(&args("top run.jsonl --once --refresh-ms 100")).unwrap();
        assert_eq!(o.command, "top");
        assert_eq!(o.positional, vec!["run.jsonl"]);
        assert!(o.once);
        assert_eq!(o.refresh_ms, 100);
        let o = parse_args(&args("metrics run.jsonl")).unwrap();
        assert_eq!(o.command, "metrics");
        assert_eq!(o.positional, vec!["run.jsonl"]);
    }

    #[test]
    fn parses_and_validates_bucket_flags() {
        // Off by default; no bucket flags means the classic path.
        let o = parse_args(&args("sssp --dataset RoadCA")).unwrap();
        assert_eq!(o.bucket_width, 0.0);
        assert!(!o.bucket_auto);
        assert_eq!(o.bucket_mode, "det");
        let o = parse_args(&args("sssp --dataset RoadCA --bucket-width 2.5")).unwrap();
        assert_eq!(o.bucket_width, 2.5);
        assert!(!o.bucket_auto);
        let o = parse_args(&args("sssp --dataset RoadCA --bucket-width auto")).unwrap();
        assert!(o.bucket_auto);
        assert_eq!(o.bucket_width, 0.0);
        let o = parse_args(&args(
            "sssp --dataset RoadCA --bucket-width 1 --bucket-mode fast",
        ))
        .unwrap();
        assert_eq!(o.bucket_mode, "fast");
        // Rejections: NaN, negative, non-finite, absurd, junk, bad mode.
        assert!(parse_args(&args("sssp --bucket-width NaN")).is_err());
        assert!(parse_args(&args("sssp --bucket-width -2")).is_err());
        assert!(parse_args(&args("sssp --bucket-width inf")).is_err());
        assert!(parse_args(&args("sssp --bucket-width 1e19")).is_err());
        assert!(parse_args(&args("sssp --bucket-width nope")).is_err());
        assert!(parse_args(&args("sssp --bucket-width")).is_err());
        assert!(parse_args(&args("sssp --bucket-width 1 --bucket-mode greedy")).is_err());
    }

    #[test]
    fn parses_and_validates_replicate_threshold() {
        // Off by default: full replication.
        let o = parse_args(&args("pagerank --dataset GWeb")).unwrap();
        assert_eq!(o.replicate_threshold, 0);
        assert!(!o.replicate_auto);
        let o = parse_args(&args("pagerank --dataset GWeb --replicate-threshold 8")).unwrap();
        assert_eq!(o.replicate_threshold, 8);
        assert!(!o.replicate_auto);
        let o = parse_args(&args("pagerank --dataset GWeb --replicate-threshold auto")).unwrap();
        assert!(o.replicate_auto);
        assert_eq!(o.replicate_threshold, 0);
        // Rejections mirror --bucket-width: junk, negative, fractional,
        // overflow, missing value.
        assert!(parse_args(&args("pagerank --replicate-threshold nope")).is_err());
        assert!(parse_args(&args("pagerank --replicate-threshold -1")).is_err());
        assert!(parse_args(&args("pagerank --replicate-threshold 2.5")).is_err());
        assert!(parse_args(&args("pagerank --replicate-threshold 5000000000")).is_err());
        assert!(parse_args(&args("pagerank --replicate-threshold")).is_err());
    }

    #[test]
    fn parses_and_validates_migrate_and_skew() {
        // Off by default: static placement, unskewed partition.
        let o = parse_args(&args("pagerank --dataset GWeb")).unwrap();
        assert_eq!(o.migrate_every, 0);
        assert!(!o.migrate_auto);
        assert_eq!(o.skew, 0.0);
        let o = parse_args(&args("pagerank --dataset GWeb --migrate 8")).unwrap();
        assert_eq!(o.migrate_every, 8);
        assert!(!o.migrate_auto);
        let o = parse_args(&args("pagerank --dataset GWeb --migrate auto")).unwrap();
        assert!(o.migrate_auto);
        assert_eq!(o.migrate_every, 0);
        let o = parse_args(&args("pagerank --dataset GWeb --migrate off")).unwrap();
        assert!(!o.migrate_auto);
        assert_eq!(o.migrate_every, 0);
        let o = parse_args(&args("pagerank --dataset GWeb --skew 0.6 --migrate auto")).unwrap();
        assert_eq!(o.skew, 0.6);
        // Rejections: junk, negative, fractional epoch, missing value.
        assert!(parse_args(&args("pagerank --migrate nope")).is_err());
        assert!(parse_args(&args("pagerank --migrate -1")).is_err());
        assert!(parse_args(&args("pagerank --migrate 2.5")).is_err());
        assert!(parse_args(&args("pagerank --migrate")).is_err());
        // Skew is a fraction in [0, 1): reject 1.0 and up, negatives, NaN.
        assert!(parse_args(&args("pagerank --skew 1.0")).is_err());
        assert!(parse_args(&args("pagerank --skew -0.1")).is_err());
        assert!(parse_args(&args("pagerank --skew NaN")).is_err());
        assert!(parse_args(&args("pagerank --skew nope")).is_err());
        assert!(parse_args(&args("pagerank --skew")).is_err());
    }

    #[test]
    fn parses_values_only_diff_flag() {
        let o = parse_args(&args("trace-diff a.jsonl b.jsonl --values-only")).unwrap();
        assert!(o.values_only);
        assert!(!o.values);
    }

    #[test]
    fn parses_profiler_flags() {
        let o = parse_args(&args(
            "pagerank --dataset GWeb --trace run.jsonl --hot 8 --listen 127.0.0.1:9184",
        ))
        .unwrap();
        assert_eq!(o.hot, 8);
        assert_eq!(o.listen.as_deref(), Some("127.0.0.1:9184"));
        let o = parse_args(&args("why-slow run.jsonl --json")).unwrap();
        assert_eq!(o.command, "why-slow");
        assert_eq!(o.positional, vec!["run.jsonl"]);
        assert!(o.json);
        let o = parse_args(&args("why-slow run.jsonl")).unwrap();
        assert!(!o.json);
        assert_eq!(o.hot, 0);
        assert!(parse_args(&args("pagerank --hot nope")).is_err());
        assert!(parse_args(&args("pagerank --listen")).is_err());
    }

    #[test]
    fn parses_mem_flags() {
        let o = parse_args(&args("pagerank --dataset GWeb --trace run.jsonl --mem")).unwrap();
        assert!(o.mem);
        // Memory samples ride on the trace file, so --mem alone is an error.
        assert!(parse_args(&args("pagerank --dataset GWeb --mem")).is_err());
        let o = parse_args(&args("mem run.jsonl --json")).unwrap();
        assert_eq!(o.command, "mem");
        assert_eq!(o.positional, vec!["run.jsonl"]);
        assert!(o.json);
        let o = parse_args(&args("mem run.jsonl")).unwrap();
        assert!(!o.json);
    }

    #[test]
    fn parses_flight_and_timeline_flags() {
        let o = parse_args(&args("pagerank --dataset GWeb --trace run.jsonl --flight")).unwrap();
        assert!(o.flight);
        // Spans ride on the trace file, so --flight alone is an error.
        assert!(parse_args(&args("pagerank --dataset GWeb --flight")).is_err());
        let o = parse_args(&args("timeline run.jsonl --chrome out.json")).unwrap();
        assert_eq!(o.command, "timeline");
        assert_eq!(o.positional, vec!["run.jsonl"]);
        assert_eq!(o.chrome.as_deref(), Some("out.json"));
        let o = parse_args(&args("timeline run.jsonl")).unwrap();
        assert!(o.chrome.is_none());
        assert!(parse_args(&args("timeline run.jsonl --chrome")).is_err());
        let o = parse_args(&args("comm run.jsonl")).unwrap();
        assert_eq!(o.command, "comm");
        assert_eq!(o.positional, vec!["run.jsonl"]);
    }

    #[test]
    fn rejects_zero_cluster_dimensions() {
        assert!(parse_args(&args("pagerank --machines 0")).is_err());
    }

    #[test]
    fn dataset_names_resolve_case_insensitively() {
        assert_eq!(dataset_by_name("gweb"), Some(Dataset::GWeb));
        assert_eq!(dataset_by_name("SYN-GL"), Some(Dataset::SynGl));
        assert_eq!(dataset_by_name("roadca"), Some(Dataset::RoadCa));
        assert_eq!(dataset_by_name("nope"), None);
    }

    #[test]
    fn load_graph_requires_exactly_one_source() {
        let mut o = Options::default();
        assert!(load_graph(&o).is_err());
        o.input = Some("x".into());
        o.dataset = Some("GWeb".into());
        assert!(load_graph(&o).is_err());
    }
}
