//! Determinism and fault-tolerance integration tests.
//!
//! Cyclops retains BSP's "synchronous and deterministic nature" (§3): for a
//! fixed seed and partition, every run must be bitwise identical, whatever
//! the thread interleaving. Checkpoint/restore (§3.6) must converge to the
//! same answer after a simulated crash at any checkpoint.

use cyclops::prelude::*;
use cyclops_algos::pagerank::{run_cyclops_pagerank, CyclopsPageRank};
use cyclops_algos::sssp::run_cyclops_sssp;
use cyclops_bsp::{run_bsp, run_bsp_from_checkpoint, BspConfig};
use cyclops_engine::{run_cyclops, run_cyclops_from_checkpoint, CyclopsConfig};

#[test]
fn cyclops_runs_are_bitwise_deterministic() {
    let g = Dataset::GWeb.generate_scaled(0.05, 1);
    let p = HashPartitioner.partition(&g, 3);
    let cluster = ClusterSpec::mt(3, 2, 2);
    let runs: Vec<Vec<f64>> = (0..3)
        .map(|_| run_cyclops_pagerank(&g, &p, &cluster, 1e-8, 300).values)
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn sssp_deterministic_across_thread_counts() {
    let g = Dataset::RoadCa.generate_scaled(0.05, 2);
    let p = HashPartitioner.partition(&g, 4);
    let a = run_cyclops_sssp(&g, &p, &ClusterSpec::flat(4, 1), 0, 100_000);
    // Same 4 workers (and the same partition), but 3 compute threads and 2
    // receivers inside each.
    let b = run_cyclops_sssp(&g, &p, &ClusterSpec::mt(4, 3, 2), 0, 100_000);
    assert_eq!(a.values, b.values);
}

#[test]
fn cyclops_crash_recovery_from_every_checkpoint() {
    let g = Dataset::Amazon.generate_scaled(0.05, 3);
    let p = HashPartitioner.partition(&g, 4);
    let config = CyclopsConfig {
        cluster: ClusterSpec::flat(2, 2),
        max_supersteps: 60,
        checkpoint_every: Some(7),
        ..Default::default()
    };
    let program = CyclopsPageRank { epsilon: 1e-7 };
    let full = run_cyclops(&program, &g, &p, &config);
    assert!(
        full.checkpoints.len() >= 2,
        "expected several checkpoints, got {}",
        full.checkpoints.len()
    );
    for cp in &full.checkpoints {
        let resumed = run_cyclops_from_checkpoint(
            &program,
            &g,
            &p,
            &CyclopsConfig {
                checkpoint_every: None,
                ..config.clone()
            },
            cp,
        );
        for (a, b) in full.values.iter().zip(&resumed.values) {
            assert!(
                (a - b).abs() < 1e-12,
                "resume from superstep {} diverged: {a} vs {b}",
                cp.superstep
            );
        }
    }
}

#[test]
fn bsp_crash_recovery_preserves_results() {
    use cyclops_algos::pagerank::BspPageRank;
    let g = Dataset::Amazon.generate_scaled(0.05, 4);
    let p = HashPartitioner.partition(&g, 4);
    let config = BspConfig {
        cluster: ClusterSpec::flat(2, 2),
        max_supersteps: 40,
        checkpoint_every: Some(9),
        ..Default::default()
    };
    let program = BspPageRank { epsilon: 1e-7 };
    let full = run_bsp(&program, &g, &p, &config);
    assert!(!full.checkpoints.is_empty());
    let cp = full.checkpoints.last().unwrap();
    let resumed = run_bsp_from_checkpoint(
        &program,
        &g,
        &p,
        &BspConfig {
            checkpoint_every: None,
            ..config
        },
        cp,
    );
    for (a, b) in full.values.iter().zip(&resumed.values) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn cyclops_checkpoints_are_smaller_than_bsp_checkpoints() {
    // §3.6: Cyclops does not save replicas or in-flight messages.
    use cyclops_algos::pagerank::BspPageRank;
    let g = Dataset::GWeb.generate_scaled(0.05, 5);
    let p = HashPartitioner.partition(&g, 4);
    let cluster = ClusterSpec::flat(2, 2);

    let bsp = run_bsp(
        &BspPageRank { epsilon: 1e-9 },
        &g,
        &p,
        &BspConfig {
            cluster,
            max_supersteps: 30,
            checkpoint_every: Some(10),
            ..Default::default()
        },
    );
    let cy = run_cyclops(
        &CyclopsPageRank { epsilon: 1e-9 },
        &g,
        &p,
        &CyclopsConfig {
            cluster,
            max_supersteps: 30,
            checkpoint_every: Some(10),
            ..Default::default()
        },
    );
    let bsp_cp = bsp.checkpoints.first().expect("bsp checkpoint");
    let cy_cp = cy.checkpoints.first().expect("cyclops checkpoint");
    assert!(
        cy_cp.storage_bytes() < bsp_cp.storage_bytes(),
        "cyclops {} vs bsp {} bytes",
        cy_cp.storage_bytes(),
        bsp_cp.storage_bytes()
    );
}

#[test]
fn replica_invariant_holds_under_thread_stress() {
    // Debug builds verify the at-most-one-message-per-replica invariant
    // inside DisjointSlots; drive a write-heavy workload through many
    // receiver threads to exercise it.
    let g = Dataset::Wiki.generate_scaled(0.02, 6);
    let p = HashPartitioner.partition(&g, 3);
    let cluster = ClusterSpec::mt(3, 4, 4);
    let r = run_cyclops_pagerank(&g, &p, &cluster, 0.0, 15);
    assert_eq!(r.supersteps, 15);
}
