//! Property-based tests of the critical-path attribution model.
//!
//! The headline invariant of [`CriticalPath::analyze`] is *exactness*: for
//! every worker in every superstep, `work + wait + residual == span` of
//! that superstep's critical path — attributed time is an exact partition
//! of the barrier-to-barrier span, not an approximation. These tests drive
//! the analyzer with arbitrary multi-worker synthetic traces and pin that
//! partition, the per-superstep chain sum, and the tie-break determinism.

use cyclops::obs::{CpPhase, CriticalPath, PhaseSample};
use proptest::prelude::*;

/// An arbitrary per-worker phase sample. Phase durations are kept below
/// 2^48 ns (~3 days) so per-superstep sums cannot overflow u64 even with
/// 64 workers; the analyzer itself saturates, but the test oracle adds.
fn arb_sample() -> impl Strategy<Value = PhaseSample> {
    (0u64..1 << 48, 0u64..1 << 48, 0u64..1 << 48, 0u64..1 << 48).prop_map(
        |(parse_ns, compute_ns, send_ns, sync_ns)| PhaseSample {
            worker: 0,
            parse_ns,
            compute_ns,
            send_ns,
            sync_ns,
        },
    )
}

/// A run of 1..=12 supersteps over a fixed roster of 1..=8 workers.
fn arb_run() -> impl Strategy<Value = Vec<(u64, Vec<PhaseSample>)>> {
    (1usize..9).prop_flat_map(|workers| {
        prop::collection::vec(
            prop::collection::vec(arb_sample(), workers..workers + 1).prop_map(
                |mut samples: Vec<PhaseSample>| {
                    for (w, s) in samples.iter_mut().enumerate() {
                        s.worker = w as u64;
                    }
                    samples
                },
            ),
            1..13,
        )
        .prop_map(|steps| {
            steps
                .into_iter()
                .enumerate()
                .map(|(i, samples)| (i as u64, samples))
                .collect()
        })
    })
}

proptest! {
    /// For every worker of every superstep, the attributed triple is an
    /// exact partition of that superstep's critical-path span.
    #[test]
    fn attribution_sums_exactly_to_the_critical_path_span(run in arb_run()) {
        let cp = CriticalPath::analyze(run.clone());
        prop_assert_eq!(cp.supersteps.len(), run.len());
        for path in &cp.supersteps {
            for w in &path.workers {
                let total = w.work_ns + w.wait_ns + w.residual_ns;
                prop_assert_eq!(
                    total, path.span_ns,
                    "superstep {} worker {}: {} + {} + {} != span {}",
                    path.superstep, w.worker, w.work_ns, w.wait_ns, w.residual_ns, path.span_ns
                );
            }
        }
    }

    /// The run-level critical path is exactly the chain of per-superstep
    /// maxima, and the run-level totals are exactly the per-superstep sums.
    #[test]
    fn run_totals_are_exact_chain_sums(run in arb_run()) {
        let cp = CriticalPath::analyze(run.clone());
        let span_sum: u64 = cp.supersteps.iter().map(|p| p.span_ns).sum();
        prop_assert_eq!(cp.total_span_ns, span_sum);
        let expected_span: u64 = run
            .iter()
            .map(|(_, samples)| samples.iter().map(|s| s.span_ns()).max().unwrap_or(0))
            .sum();
        prop_assert_eq!(cp.total_span_ns, expected_span);
        let work_sum: u64 = cp
            .supersteps
            .iter()
            .flat_map(|p| p.workers.iter().map(|w| w.work_ns))
            .sum();
        prop_assert_eq!(cp.total_work_ns, work_sum);
        // Exactness lifts to the aggregate: pool == workers × span chain.
        let pool = cp.total_work_ns + cp.total_wait_ns + cp.total_residual_ns;
        let workers = run.first().map(|(_, s)| s.len() as u64).unwrap_or(0);
        prop_assert_eq!(pool, span_sum * workers);
    }

    /// The critical worker and straggler are the argmax of span and work
    /// respectively, with ties broken toward the lowest worker id — the
    /// determinism contract `why-slow` and the golden report rely on.
    #[test]
    fn straggler_is_the_deterministic_work_argmax(run in arb_run()) {
        let cp = CriticalPath::analyze(run.clone());
        for (path, (_, samples)) in cp.supersteps.iter().zip(&run) {
            let max_span = samples.iter().map(|s| s.span_ns()).max().unwrap();
            let expected_cw = samples.iter().find(|s| s.span_ns() == max_span).unwrap().worker;
            prop_assert_eq!(path.critical_worker, expected_cw);
            let max_work = samples.iter().map(|s| s.work_ns()).max().unwrap();
            let expected_straggler =
                samples.iter().find(|s| s.work_ns() == max_work).unwrap().worker;
            prop_assert_eq!(path.straggler, expected_straggler);
        }
        // Analysis is a pure function: re-running is byte-identical.
        let again = CriticalPath::analyze(run);
        prop_assert_eq!(format!("{cp:?}"), format!("{again:?}"));
    }

    /// Caused wait + the straggler's own barrier time account for every
    /// nanosecond of sync across the superstep's workers.
    #[test]
    fn caused_wait_partitions_sync_time(run in arb_run()) {
        let cp = CriticalPath::analyze(run.clone());
        for (path, (_, samples)) in cp.supersteps.iter().zip(&run) {
            let wait_sum: u64 = path.workers.iter().map(|w| w.wait_ns).sum();
            prop_assert_eq!(path.caused_wait_ns + path.barrier_ns, wait_sum);
            let sync_sum: u64 = samples.iter().map(|s| s.sync_ns).sum();
            prop_assert_eq!(wait_sum, sync_sum);
        }
        let rank_sum: u64 = cp.straggler_ranking().iter().map(|s| s.caused_wait_ns).sum();
        prop_assert_eq!(rank_sum, cp.total_caused_wait_ns());
    }
}

/// A single-worker run degenerates cleanly: span == own span, zero caused
/// wait, all sync attributed as the straggler's own barrier time.
#[test]
fn single_worker_has_no_caused_wait() {
    let cp = CriticalPath::analyze(vec![(
        0,
        vec![PhaseSample {
            worker: 0,
            parse_ns: 5,
            compute_ns: 10,
            send_ns: 3,
            sync_ns: 7,
        }],
    )]);
    let path = &cp.supersteps[0];
    assert_eq!(path.span_ns, 25);
    assert_eq!(path.caused_wait_ns, 0);
    assert_eq!(path.barrier_ns, 7);
    assert_eq!(path.straggler_phase, CpPhase::Compute);
    assert!(cp.straggler_ranking().is_empty() || cp.total_caused_wait_ns() == 0);
}
