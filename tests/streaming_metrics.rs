//! Acceptance tests for the streaming-metrics subsystem.
//!
//! Covers the PR's headline guarantees: (1) the buffered ring sink drops
//! records past [`DEFAULT_RING_CAPACITY`] while the streaming sink keeps
//! every one, byte-identically; (2) a real >4096-superstep PageRank streams
//! a complete trace whose log-linear quantiles stay within the histogram's
//! 12.5 % bucket-error bound of the exact sorted percentiles; (3) the
//! Prometheus exposition is golden-file stable; (4) GAS apply-phase
//! publication digests let `trace-diff --values` name the divergent vertex;
//! (5) the BSP inbox ablation (`InboxMode::Sharded`) reproduces GlobalQueue
//! results without lock contention; (6) `max_supersteps` is a *global* cap
//! that checkpoint-resume inherits unchanged, in both resumable engines.

use cyclops::obs::{render_prometheus, LogLinearHistogram, MetricsRegistry};
use cyclops::prelude::*;
use cyclops_algos::pagerank::{BspPageRank, CyclopsPageRank, GasPageRank};
use cyclops_bsp::{run_bsp, run_bsp_from_checkpoint, BspConfig};
use cyclops_engine::{run_cyclops, run_cyclops_from_checkpoint, run_cyclops_traced, CyclopsConfig};
use cyclops_gas::{run_gas_traced, GasConfig, GasProgram};
use cyclops_net::metrics::PhaseTimes;
use cyclops_net::trace::{
    diff, read_jsonl, RunTrace, TraceRecord, TraceSink, DEFAULT_RING_CAPACITY,
};
use cyclops_net::InboxMode;
use cyclops_partition::{RandomVertexCut, VertexCutPartitioner};
use std::collections::HashMap;

/// A process-unique temp path for one test's trace file.
fn tmp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "cyclops-streaming-{}-{name}.jsonl",
            std::process::id()
        ))
        .to_str()
        .unwrap()
        .to_string()
}

/// Directed ring over `n` vertices — PageRank's exact fixed point from
/// superstep 0, so convergence behaviour is fully controlled by epsilon.
fn ring(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 0..n as VertexId {
        b.add_edge(v, (v + 1) % n as VertexId);
    }
    b.build()
}

fn finish(mut sink: TraceSink) -> RunTrace {
    assert_eq!(sink.dropped_records(), 0, "ring buffer overflowed");
    RunTrace {
        spans: Vec::new(),
        mem: Vec::new(),
        meta: sink.meta().clone(),
        records: sink.take_records(),
    }
}

/// The buffered ring sink silently forgets the oldest supersteps past its
/// capacity; the streaming sink writes every record, and the records both
/// sinks retain are byte-identical JSONL.
#[test]
fn ring_overflow_drops_while_streaming_keeps_every_record() {
    let spec = ClusterSpec::flat(1, 2);
    let workers = 2usize;
    let n = DEFAULT_RING_CAPACITY + 100;
    let times = PhaseTimes::default();

    let mut buffered = TraceSink::new("synthetic", &spec);
    for s in 0..n {
        for w in 0..workers {
            buffered.worker(w).commit(s, w, s + w, &times, false);
        }
    }
    assert!(
        buffered.dropped_records() > 0,
        "the buffered ring must overflow past DEFAULT_RING_CAPACITY"
    );
    let survivors = buffered.take_records();
    assert!(survivors.len() < n * workers, "overflow must lose records");

    let path = tmp_path("overflow");
    let sink = TraceSink::streaming("synthetic", &spec, &path).unwrap();
    for s in 0..n {
        for w in 0..workers {
            sink.worker(w).commit(s, w, s + w, &times, false);
        }
    }
    let summary = sink.finish().unwrap();
    assert_eq!(summary.records_written, (n * workers) as u64);

    let streamed = read_jsonl(&path).unwrap();
    assert_eq!(streamed.records.len(), n * workers);
    // Exactly-once coverage of every (superstep, worker).
    for (i, r) in streamed.records.iter().enumerate() {
        assert_eq!(r.superstep as usize, i / workers);
        assert_eq!(r.worker as usize, i % workers);
    }
    // The window the ring did keep must match the stream byte-for-byte.
    let by_key: HashMap<(u64, u64), &TraceRecord> = streamed
        .records
        .iter()
        .map(|r| ((r.superstep, r.worker), r))
        .collect();
    for kept in &survivors {
        let full = by_key[&(kept.superstep, kept.worker)];
        let (mut a, mut b) = (String::new(), String::new());
        kept.to_json(&mut a);
        full.to_json(&mut b);
        assert_eq!(a, b, "ring and stream disagree on a surviving record");
    }
    std::fs::remove_file(&path).ok();
}

/// A real PageRank run past the ring capacity: `epsilon = -1.0` never
/// converges (every per-vertex error exceeds it), so the engine executes
/// exactly `max_supersteps` supersteps and the streamed trace must cover
/// all of them. The log-linear phase quantiles must agree with the exact
/// nearest-rank percentiles within the histogram's 12.5 % bucket error.
#[test]
fn streaming_pagerank_past_ring_capacity_is_complete_and_quantile_accurate() {
    let supersteps = DEFAULT_RING_CAPACITY + 64;
    let g = ring(8);
    let cluster = ClusterSpec::flat(1, 2);
    let p = HashPartitioner.partition(&g, 2);
    let path = tmp_path("pagerank");
    let sink = TraceSink::streaming("cyclops", &cluster, &path).unwrap();
    let config = CyclopsConfig {
        cluster,
        max_supersteps: supersteps,
        ..Default::default()
    };
    let r = run_cyclops_traced(
        &CyclopsPageRank { epsilon: -1.0 },
        &g,
        &p,
        &config,
        Some(&sink),
    );
    assert_eq!(r.supersteps, supersteps, "epsilon < 0 must never converge");
    assert_eq!(
        sink.dropped_records(),
        0,
        "streaming mode bypasses the ring"
    );
    let summary = sink.finish().unwrap();
    let workers = cluster.num_workers();
    assert_eq!(
        summary.records_written,
        (supersteps * workers) as u64,
        "records_written must equal supersteps x workers"
    );

    let trace = read_jsonl(&path).unwrap();
    assert_eq!(trace.records.len(), supersteps * workers);
    assert_eq!(trace.supersteps(), supersteps as u64);
    for (i, rec) in trace.records.iter().enumerate() {
        assert_eq!(rec.superstep as usize, i / workers);
        assert_eq!(rec.worker as usize, i % workers);
    }

    // Quantile accuracy: per-record total superstep latency, histogram vs
    // exact sorted nearest-rank.
    let mut exact: Vec<u64> = trace
        .records
        .iter()
        .map(|rec| rec.parse_ns + rec.compute_ns + rec.send_ns + rec.sync_ns)
        .collect();
    let h = LogLinearHistogram::new();
    for &v in &exact {
        h.record(v);
    }
    exact.sort_unstable();
    let snap = h.snapshot();
    for q in [0.50, 0.90, 0.99] {
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len()) - 1;
        let want = exact[rank];
        let got = snap.percentile(q);
        if want == 0 {
            assert_eq!(got, 0, "p{q} of all-zero samples");
        } else {
            let rel = (got as f64 - want as f64).abs() / want as f64;
            assert!(
                rel <= 0.125,
                "p{q}: histogram {got} vs exact {want} ({:.1} % off)",
                rel * 100.0
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Deterministic registry contents shared with the golden file.
fn golden_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    reg.counter(
        "cyclops_messages_total",
        &[("engine", "cyclops"), ("mode", "sharded")],
    )
    .inc(1234);
    reg.counter(
        "cyclops_message_bytes_total",
        &[("engine", "cyclops"), ("mode", "sharded")],
    )
    .inc(987_654);
    reg.gauge("cyclops_run_supersteps", &[("engine", "cyclops")])
        .set(18);
    let h = reg.histogram(
        "cyclops_phase_ns",
        &[("engine", "cyclops"), ("phase", "cmp")],
    );
    for v in [800u64, 3_000, 3_100, 65_000, 1_048_576, 9_999_999] {
        h.record(v);
    }
    reg
}

/// The Prometheus text exposition is byte-stable against a golden file.
/// Regenerate with `BLESS=1 cargo test prometheus_exposition`.
#[test]
fn prometheus_exposition_matches_golden_file() {
    let got = render_prometheus(&golden_registry());
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden, &got).unwrap();
    }
    let want = std::fs::read_to_string(golden)
        .expect("tests/golden/metrics.prom missing; run with BLESS=1 to create it");
    assert_eq!(
        got, want,
        "Prometheus exposition drifted from tests/golden/metrics.prom; \
         rerun with BLESS=1 if the change is intentional"
    );
}

/// Delegates to [`GasPageRank`] but nudges one vertex's applied value — a
/// perturbation invisible to every deterministic counter (same actives,
/// same message counts) and visible only through publication digests.
struct PerturbedGasPageRank {
    inner: GasPageRank,
    victim: VertexId,
}

impl GasProgram for PerturbedGasPageRank {
    type Value = f64;
    type Gather = f64;

    fn init(&self, v: VertexId, g: &Graph) -> f64 {
        self.inner.init(v, g)
    }

    fn gather(&self, g: &Graph, src: VertexId, src_value: &f64, w: f64, dst: VertexId) -> f64 {
        self.inner.gather(g, src, src_value, w, dst)
    }

    fn sum(&self, a: f64, b: f64) -> f64 {
        self.inner.sum(a, b)
    }

    fn apply(&self, g: &Graph, v: VertexId, old: &f64, acc: Option<f64>) -> f64 {
        let new = self.inner.apply(g, v, old, acc);
        if v == self.victim {
            new + 0.5
        } else {
            new
        }
    }

    fn scatter_activates(
        &self,
        g: &Graph,
        src: VertexId,
        old: &f64,
        new: &f64,
        w: f64,
        dst: VertexId,
    ) -> bool {
        self.inner.scatter_activates(g, src, old, new, w, dst)
    }
}

/// GAS masters digest every applied value in values mode, so
/// `trace-diff --values` localises a pure value perturbation down to the
/// superstep and vertex — while the counter-only diff sees nothing.
#[test]
fn gas_values_trace_diff_names_the_divergent_vertex() {
    let g = ring(16);
    let cluster = ClusterSpec::flat(2, 1);
    let vc = RandomVertexCut::default().partition(&g, cluster.num_workers());
    let victim: VertexId = 3;
    // Huge epsilon: scatter never re-activates, in the base run *and* under
    // the 0.5 perturbation, so both runs execute exactly one superstep with
    // identical counters.
    let config = GasConfig {
        cluster,
        max_supersteps: 4,
        ..Default::default()
    };

    let base_sink = TraceSink::with_values("gas", &cluster);
    run_gas_traced(
        &GasPageRank { epsilon: 10.0 },
        &g,
        &vc,
        &config,
        Some(&base_sink),
    );
    let pert_sink = TraceSink::with_values("gas", &cluster);
    run_gas_traced(
        &PerturbedGasPageRank {
            inner: GasPageRank { epsilon: 10.0 },
            victim,
        },
        &g,
        &vc,
        &config,
        Some(&pert_sink),
    );
    let (base, pert) = (finish(base_sink), finish(pert_sink));

    // Every master's apply was digested: across workers the superstep-0
    // records carry one publication per vertex.
    let pubs_at_0: usize = base
        .records
        .iter()
        .filter(|r| r.superstep == 0)
        .map(|r| r.pubs.len())
        .sum();
    assert_eq!(pubs_at_0, g.num_vertices(), "one digest per applied master");

    // Counters alone cannot see a pure value perturbation...
    assert_eq!(diff::first_divergence(&base, &pert, false), None);
    // ...but the digests name the exact superstep and vertex.
    let d = diff::first_divergence(&base, &pert, true)
        .expect("values-mode diff must expose the perturbation");
    assert_eq!(d.counter, "publication_digest");
    assert_eq!(d.superstep, 0);
    assert_eq!(d.vertex, Some(victim));
}

/// Swapping Hama's global locked inbox for Cyclops' sharded per-sender
/// lanes must not change the computation — same superstep count, same
/// values (up to f64 summation order) — and the sharded inbox must be
/// contention-free by construction.
#[test]
fn bsp_sharded_inbox_matches_global_queue_and_is_contention_free() {
    let g = Dataset::Amazon.generate_scaled(0.05, 1);
    let cluster = ClusterSpec::flat(2, 2);
    let p = HashPartitioner.partition(&g, cluster.num_workers());
    let mk = |inbox: InboxMode| BspConfig {
        cluster,
        max_supersteps: 8,
        use_combiner: true,
        inbox,
        ..Default::default()
    };
    let prog = BspPageRank { epsilon: 0.0 };
    let global = run_bsp(&prog, &g, &p, &mk(InboxMode::GlobalQueue));
    let sharded = run_bsp(&prog, &g, &p, &mk(InboxMode::Sharded));

    assert_eq!(global.supersteps, sharded.supersteps);
    for (i, (a, b)) in global.values.iter().zip(&sharded.values).enumerate() {
        assert!(
            (a - b).abs() < 1e-12,
            "vertex {i}: global-queue {a} vs sharded {b}"
        );
    }
    assert_eq!(
        sharded.counters.lock_contentions, 0,
        "per-sender lanes never contend"
    );
    assert_eq!(global.counters.messages, sharded.counters.messages);
}

/// `max_supersteps` caps the global superstep index: a Cyclops resume with
/// the original config stops exactly where the uninterrupted run did, and
/// resuming at or past the cap executes nothing.
#[test]
fn max_supersteps_is_a_global_cap_across_cyclops_resume() {
    let g = ring(8);
    let cluster = ClusterSpec::flat(1, 2);
    let p = HashPartitioner.partition(&g, cluster.num_workers());
    let prog = CyclopsPageRank { epsilon: -1.0 }; // never converges
    let config = CyclopsConfig {
        cluster,
        max_supersteps: 12,
        checkpoint_every: Some(5),
        ..Default::default()
    };

    let full = run_cyclops(&prog, &g, &p, &config);
    assert_eq!(full.supersteps, 12);
    let cp = full.checkpoints.last().expect("checkpoints captured");
    assert!(cp.superstep > 0 && cp.superstep < 12);

    // Resume under the unchanged config: the cap is global, so the resumed
    // run finishes at superstep 12 — not 12 more from the resume point.
    let resumed = run_cyclops_from_checkpoint(
        &prog,
        &g,
        &p,
        &CyclopsConfig {
            checkpoint_every: None,
            ..config.clone()
        },
        cp,
    );
    assert_eq!(resumed.supersteps, 12);
    assert_eq!(full.values, resumed.values, "resume must be deterministic");

    // Resuming at (or past) the cap executes nothing at all.
    let noop = run_cyclops_from_checkpoint(
        &prog,
        &g,
        &p,
        &CyclopsConfig {
            checkpoint_every: None,
            max_supersteps: cp.superstep,
            ..config
        },
        cp,
    );
    assert_eq!(noop.supersteps, cp.superstep);
    assert!(noop.stats.is_empty(), "no superstep may have executed");
}

/// The same global-cap semantics hold for the BSP engine's checkpoints.
#[test]
fn max_supersteps_is_a_global_cap_across_bsp_resume() {
    let g = ring(8);
    let cluster = ClusterSpec::flat(1, 2);
    let p = HashPartitioner.partition(&g, cluster.num_workers());
    let prog = BspPageRank { epsilon: -1.0 }; // mean error is never < 0
    let config = BspConfig {
        cluster,
        max_supersteps: 10,
        checkpoint_every: Some(4),
        ..Default::default()
    };

    let full = run_bsp(&prog, &g, &p, &config);
    assert_eq!(full.supersteps, 10);
    let cp = full.checkpoints.last().expect("checkpoints captured");
    assert!(cp.superstep > 0 && cp.superstep < 10);

    let resumed = run_bsp_from_checkpoint(
        &prog,
        &g,
        &p,
        &BspConfig {
            checkpoint_every: None,
            ..config.clone()
        },
        cp,
    );
    assert_eq!(resumed.supersteps, 10, "resume inherits the original cap");
    for (i, (a, b)) in full.values.iter().zip(&resumed.values).enumerate() {
        assert!((a - b).abs() < 1e-12, "vertex {i}: {a} vs {b}");
    }

    let noop = run_bsp_from_checkpoint(
        &prog,
        &g,
        &p,
        &BspConfig {
            checkpoint_every: None,
            max_supersteps: cp.superstep,
            ..config
        },
        cp,
    );
    assert_eq!(noop.supersteps, cp.superstep);
    assert!(noop.stats.is_empty(), "no superstep may have executed");
}
