//! Hybrid replication equivalence matrix (ISSUE 8).
//!
//! `--replicate-threshold` trades replicas for direct messages on cold
//! boundary vertices, but the immutable-view contract is unchanged: a
//! master's publication reaches every cross-worker reader exactly once per
//! superstep, through a replica slot or a direct-message slot. Results must
//! therefore be **bitwise identical** to full replication at every
//! threshold, on every engine topology, under every scheduler. These tests
//! pin that for PageRank/SSSP/CC on an R-MAT power-law graph and a path
//! graph, across thresholds {0, 2, 8, auto} × flat Cyclops and CyclopsMT,
//! down to the values-mode trace.

use cyclops::prelude::*;
use cyclops_algos::cc::{run_cyclops_cc_tuned, symmetrize};
use cyclops_algos::pagerank::run_cyclops_pagerank_tuned;
use cyclops_algos::sssp::run_cyclops_sssp_tuned;
use cyclops_engine::Sched;
use cyclops_net::trace::{diff, RunTrace, TraceSink};
use cyclops_partition::EdgeCutPartition;

/// Default sparse-superstep cutoff (the tuned entry points take it
/// explicitly).
const SPARSE: f64 = 0.015;

fn finish(mut sink: TraceSink) -> RunTrace {
    assert_eq!(sink.dropped_records(), 0, "ring buffer overflowed");
    RunTrace {
        spans: Vec::new(),
        mem: Vec::new(),
        meta: sink.meta().clone(),
        records: sink.take_records(),
    }
}

/// A weighted path 0 → 1 → … → n-1: every cut edge crosses workers under a
/// hash partition, and every vertex has combined degree ≤ 2, so any
/// threshold ≥ 3 messages the *entire* boundary.
fn path_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 0..n - 1 {
        b.add_weighted_edge(v as u32, v as u32 + 1, 1.0 + (v % 7) as f64 / 10.0);
    }
    b.build()
}

/// The threshold matrix from the issue: full replication, two fixed
/// degree cuts, and the traffic-model auto pick.
fn thresholds(g: &Graph, p: &EdgeCutPartition) -> Vec<(String, u32)> {
    vec![
        ("t=2".into(), 2),
        ("t=8".into(), 8),
        (
            format!("auto (t={})", p.auto_replicate_threshold(g)),
            p.auto_replicate_threshold(g),
        ),
    ]
}

/// Both engine topologies with the same worker count, so one partition
/// serves both: flat Cyclops (one thread per worker) and CyclopsMT.
fn clusters() -> Vec<ClusterSpec> {
    vec![ClusterSpec::flat(3, 2), ClusterSpec::mt(3, 2, 1)]
}

#[test]
fn pagerank_hybrid_matches_full_replication_on_rmat() {
    let g = Dataset::GWeb.generate_scaled(0.04, 11);
    for cluster in clusters() {
        let p = HashPartitioner.partition(&g, cluster.num_workers());
        let sink0 = TraceSink::with_values("cyclops", &cluster);
        let full = run_cyclops_pagerank_tuned(
            &g,
            &p,
            &cluster,
            1e-8,
            60,
            Sched::Static,
            SPARSE,
            0,
            Some(&sink0),
        );
        assert_eq!(full.direct_messages, 0, "threshold 0 sends no directs");
        let base = finish(sink0);
        for (name, t) in thresholds(&g, &p) {
            let sink = TraceSink::with_values("cyclops", &cluster);
            let hy = run_cyclops_pagerank_tuned(
                &g,
                &p,
                &cluster,
                1e-8,
                60,
                Sched::Static,
                SPARSE,
                t,
                Some(&sink),
            );
            assert_eq!(hy.supersteps, full.supersteps, "{cluster:?} {name}");
            for (v, (a, b)) in full.values.iter().zip(&hy.values).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{cluster:?} {name} vertex {v}");
            }
            assert_eq!(
                diff::first_value_divergence(&base, &finish(sink)),
                None,
                "{cluster:?} {name}: values-mode trace must match threshold 0"
            );
            // Every boundary vertex is accounted for on exactly one path.
            assert_eq!(
                hy.ingress.replicated_boundary + hy.ingress.messaged_boundary,
                full.ingress.replicated_boundary,
                "{cluster:?} {name}"
            );
            assert!(
                hy.replication_factor <= full.replication_factor,
                "{cluster:?} {name}: messaging cold vertices cannot add replicas"
            );
        }
    }
}

#[test]
fn sssp_hybrid_matches_full_replication_on_rmat_and_path() {
    let rmat = Dataset::GWeb.generate_scaled(0.04, 13);
    let path = path_graph(64);
    for g in [&rmat, &path] {
        for cluster in clusters() {
            let p = HashPartitioner.partition(g, cluster.num_workers());
            let full =
                run_cyclops_sssp_tuned(g, &p, &cluster, 0, 10_000, Sched::Static, SPARSE, 0, None);
            for (name, t) in thresholds(g, &p) {
                let hy = run_cyclops_sssp_tuned(
                    g,
                    &p,
                    &cluster,
                    0,
                    10_000,
                    Sched::Static,
                    SPARSE,
                    t,
                    None,
                );
                assert_eq!(hy.supersteps, full.supersteps, "{cluster:?} {name}");
                for (v, (a, b)) in full.values.iter().zip(&hy.values).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{cluster:?} {name} vertex {v}");
                }
            }
        }
    }
    // The path graph's boundary is all degree ≤ 2: threshold 8 replicates
    // nothing and runs entirely on direct messages.
    let p = HashPartitioner.partition(&path, 6);
    let all_direct = run_cyclops_sssp_tuned(
        &path,
        &p,
        &ClusterSpec::flat(3, 2),
        0,
        10_000,
        Sched::Static,
        SPARSE,
        8,
        None,
    );
    assert_eq!(all_direct.ingress.replicated_boundary, 0);
    assert!(all_direct.direct_messages > 0);
    assert_eq!(all_direct.replication_factor, 0.0);
}

#[test]
fn cc_hybrid_matches_full_replication_on_rmat() {
    let g = symmetrize(&Dataset::Amazon.generate_scaled(0.05, 17));
    for cluster in clusters() {
        let p = HashPartitioner.partition(&g, cluster.num_workers());
        let full = run_cyclops_cc_tuned(&g, &p, &cluster, Sched::Static, SPARSE, 0, None);
        for (name, t) in thresholds(&g, &p) {
            let hy = run_cyclops_cc_tuned(&g, &p, &cluster, Sched::Static, SPARSE, t, None);
            assert_eq!(hy.values, full.values, "{cluster:?} {name}");
            assert_eq!(hy.supersteps, full.supersteps, "{cluster:?} {name}");
        }
    }
}

/// Under `--sched dynamic` the per-chunk reduction order is pinned, so the
/// values-mode trace of a hybrid run must be identical across compute
/// thread counts — the determinism story survives the second publication
/// path.
#[test]
fn hybrid_dynamic_sched_trace_is_stable_across_thread_counts() {
    let g = Dataset::GWeb.generate_scaled(0.04, 19);
    let narrow = ClusterSpec::mt(2, 2, 1);
    let wide = ClusterSpec::mt(2, 4, 2);
    assert_eq!(narrow.num_workers(), wide.num_workers());
    let p = HashPartitioner.partition(&g, narrow.num_workers());
    let t = p.auto_replicate_threshold(&g);

    let sink_n = TraceSink::with_values("cyclops", &narrow);
    let rn = run_cyclops_pagerank_tuned(
        &g,
        &p,
        &narrow,
        1e-8,
        60,
        Sched::Dynamic,
        SPARSE,
        t,
        Some(&sink_n),
    );
    let sink_w = TraceSink::with_values("cyclops", &wide);
    let rw = run_cyclops_pagerank_tuned(
        &g,
        &p,
        &wide,
        1e-8,
        60,
        Sched::Dynamic,
        SPARSE,
        t,
        Some(&sink_w),
    );
    for (v, (a, b)) in rn.values.iter().zip(&rw.values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "vertex {v}");
    }
    assert_eq!(rn.direct_messages, rw.direct_messages);
    assert_eq!(rn.direct_bytes, rw.direct_bytes);
    assert_eq!(
        diff::first_value_divergence(&finish(sink_n), &finish(sink_w)),
        None,
        "hybrid dynamic-sched trace must not depend on thread count"
    );
}
