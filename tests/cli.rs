//! End-to-end tests of the `cyclops` command-line tool, driving the real
//! binary through generate → analyze → output-file round trips.

use std::process::Command;

fn cyclops(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cyclops"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cyclops-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = cyclops(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage: cyclops"));
    assert!(stdout.contains("pagerank"));
}

#[test]
fn unknown_command_fails_with_message() {
    let (ok, _, stderr) = cyclops(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn pagerank_on_dataset_prints_ranks() {
    let (ok, stdout, stderr) = cyclops(&[
        "pagerank",
        "--dataset",
        "GWeb",
        "--scale",
        "0.03",
        "--top",
        "3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("pagerank:"), "{stdout}");
    assert_eq!(stdout.lines().filter(|l| l.starts_with("  ")).count(), 3);
}

#[test]
fn gen_then_analyze_round_trip() {
    let graph_file = temp_path("gweb.txt");
    let (ok, stdout, stderr) = cyclops(&[
        "gen",
        "--dataset",
        "GWeb",
        "--scale",
        "0.03",
        "--output",
        graph_file.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("wrote"));

    let (ok, stdout, stderr) = cyclops(&["info", "--input", graph_file.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("vertices:"));

    let out_file = temp_path("ranks.txt");
    let (ok, _, stderr) = cyclops(&[
        "pagerank",
        "--input",
        graph_file.to_str().unwrap(),
        "--engine",
        "hama",
        "--output",
        out_file.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    let ranks = std::fs::read_to_string(&out_file).unwrap();
    assert!(ranks.lines().count() > 100);
    // Every line is "vertex value".
    for line in ranks.lines().take(5) {
        let mut parts = line.split_whitespace();
        parts.next().unwrap().parse::<u32>().unwrap();
        parts.next().unwrap().parse::<f64>().unwrap();
    }
}

#[test]
fn sssp_and_bfs_run_on_road() {
    let (ok, stdout, stderr) = cyclops(&[
        "sssp",
        "--dataset",
        "RoadCA",
        "--scale",
        "0.05",
        "--source",
        "3",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("sssp from 3"));

    let (ok, stdout, _) = cyclops(&[
        "bfs",
        "--dataset",
        "RoadCA",
        "--scale",
        "0.05",
        "--partitioner",
        "metis",
    ]);
    assert!(ok);
    assert!(stdout.contains("bfs from 0"));
}

#[test]
fn cc_cd_triangles_summaries() {
    let (ok, stdout, _) = cyclops(&["cc", "--dataset", "DBLP", "--scale", "0.05"]);
    assert!(ok);
    assert!(stdout.contains("components"));

    let (ok, stdout, _) = cyclops(&[
        "cd",
        "--dataset",
        "DBLP",
        "--scale",
        "0.05",
        "--sweeps",
        "5",
    ]);
    assert!(ok);
    assert!(stdout.contains("communities"));

    let (ok, stdout, _) = cyclops(&["triangles", "--dataset", "DBLP", "--scale", "0.05"]);
    assert!(ok);
    assert!(stdout.contains("triangles:"));
}

#[test]
fn out_of_range_source_is_rejected() {
    let (ok, _, stderr) = cyclops(&[
        "sssp",
        "--dataset",
        "Amazon",
        "--scale",
        "0.03",
        "--source",
        "99999999",
    ]);
    assert!(!ok);
    assert!(stderr.contains("out of range"));
}

#[test]
fn why_slow_json_matches_the_golden_report() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/why_slow.jsonl");
    let golden = include_str!("golden/why_slow.json");
    let (ok, stdout, stderr) = cyclops(&["why-slow", fixture, "--json"]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(
        stdout, golden,
        "why-slow --json drifted from tests/golden/why_slow.json; \
         if the change is intentional, regenerate the golden file"
    );
    // Byte-identical on a second run: the report is a pure function of
    // the trace.
    let (_, again, _) = cyclops(&["why-slow", fixture, "--json"]);
    assert_eq!(stdout, again);
}

#[test]
fn why_slow_report_names_straggler_and_hot_vertices() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/why_slow.jsonl");
    let (ok, stdout, stderr) = cyclops(&["why-slow", fixture]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("worker 0 CMP"), "{stdout}");
    assert!(stdout.contains("critical path 1100ns"), "{stdout}");
    assert!(stdout.contains("hot vertices"), "{stdout}");

    let (ok, _, stderr) = cyclops(&["why-slow"]);
    assert!(!ok);
    assert!(stderr.contains("why-slow needs one trace file"), "{stderr}");

    // --hot without a trace sink would silently capture nothing.
    let (ok, _, stderr) = cyclops(&[
        "pagerank",
        "--dataset",
        "Amazon",
        "--scale",
        "0.03",
        "--hot",
        "4",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--hot needs --trace"), "{stderr}");
}

/// Every trace-consuming command goes through the same loader, so a
/// missing, empty, or malformed trace must produce the same diagnostic
/// shape — `trace <path>: <cause>` — and a non-zero exit, regardless of
/// which command hit it.
#[test]
fn trace_commands_share_consistent_error_messages() {
    let missing = temp_path("nope.jsonl");
    let missing = missing.to_str().unwrap();
    let empty = temp_path("empty.jsonl");
    std::fs::write(&empty, "").unwrap();
    let empty = empty.to_str().unwrap();
    let bad_header = temp_path("bad-header.jsonl");
    std::fs::write(&bad_header, "not json\n").unwrap();
    let bad_header = bad_header.to_str().unwrap();
    let truncated = temp_path("truncated.jsonl");
    std::fs::write(
        &truncated,
        "{\"engine\":\"cyclops\",\"cluster\":\"1x1x1\",\"workers\":1,\"values\":false}\n\
         {\"superstep\":0,\"worker\"\n",
    )
    .unwrap();
    let truncated = truncated.to_str().unwrap();

    let commands = [
        "metrics",
        "top",
        "why-slow",
        "trace-diff",
        "timeline",
        "comm",
        "mem",
    ];
    for command in commands {
        for (path, cause) in [
            (missing, "file not found"),
            (empty, "empty trace"),
            (bad_header, "bad trace header"),
            (truncated, "bad record on line 2"),
        ] {
            let args = match command {
                "top" => vec![command, path, "--once"],
                "trace-diff" => vec![command, path, path],
                _ => vec![command, path],
            };
            let (ok, _, stderr) = cyclops(&args);
            assert!(!ok, "{args:?} must fail");
            let expected = format!("error: trace {path}: {cause}");
            assert!(
                stderr.contains(&expected),
                "{args:?}: expected {expected:?} in {stderr:?}"
            );
        }
    }
}

/// Minimal recursive-descent JSON syntax checker: returns the remainder
/// after one value, or None on malformed input. Enough to assert the
/// Chrome export *parses* without pulling in a JSON dependency.
fn json_value(s: &str) -> Option<&str> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next()?.1 {
        '{' => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return Some(r);
            }
            loop {
                rest = json_value(rest)?.trim_start(); // key (validated as a value)
                rest = rest.strip_prefix(':')?;
                rest = json_value(rest)?.trim_start();
                match rest.chars().next()? {
                    ',' => rest = rest[1..].trim_start(),
                    '}' => return Some(&rest[1..]),
                    _ => return None,
                }
            }
        }
        '[' => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix(']') {
                return Some(r);
            }
            loop {
                rest = json_value(rest)?.trim_start();
                match rest.chars().next()? {
                    ',' => rest = rest[1..].trim_start(),
                    ']' => return Some(&rest[1..]),
                    _ => return None,
                }
            }
        }
        '"' => {
            let mut escaped = false;
            for (i, c) in chars {
                match c {
                    _ if escaped => escaped = false,
                    '\\' => escaped = true,
                    '"' => return Some(&s[i + 1..]),
                    _ => {}
                }
            }
            None
        }
        _ => {
            let end = s
                .find(|c: char| !c.is_ascii_alphanumeric() && !"+-.".contains(c))
                .unwrap_or(s.len());
            let token = &s[..end];
            if token == "true"
                || token == "false"
                || token == "null"
                || token.parse::<f64>().is_ok()
            {
                Some(&s[end..])
            } else {
                None
            }
        }
    }
}

fn assert_valid_json(s: &str) {
    let rest = json_value(s).unwrap_or_else(|| panic!("malformed JSON: {s}"));
    assert!(
        rest.trim().is_empty(),
        "trailing garbage after JSON: {rest}"
    );
}

/// The flight-recorder round trip: a `--flight` run appends span lines to
/// the trace, `timeline --chrome` exports them as valid Chrome trace-event
/// JSON, and `comm` verifies the worker-pair matrix against the sent
/// counters.
#[test]
fn flight_run_exports_chrome_trace_and_comm_matrix() {
    let trace = temp_path("flight.jsonl");
    let trace = trace.to_str().unwrap();
    let (ok, stdout, stderr) = cyclops(&[
        "pagerank",
        "--dataset",
        "Amazon",
        "--scale",
        "0.03",
        "--trace",
        trace,
        "--flight",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("flight-recorder spans appended"),
        "{stdout}"
    );
    let raw = std::fs::read_to_string(trace).unwrap();
    assert!(
        raw.contains("\"span\":\"cmp\""),
        "no compute spans in trace"
    );
    assert!(raw.contains("\"span\":\"barrier\""), "no barrier spans");
    assert!(raw.contains("\"span\":\"flush\""), "no flush spans");

    let (ok, stdout, stderr) = cyclops(&["timeline", trace]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("spans over"), "{stdout}");
    assert!(stdout.contains("cmp"), "{stdout}");

    let chrome = temp_path("flight.chrome.json");
    let chrome = chrome.to_str().unwrap();
    let (ok, _, stderr) = cyclops(&["timeline", trace, "--chrome", chrome]);
    assert!(ok, "stderr: {stderr}");
    let exported = std::fs::read_to_string(chrome).unwrap();
    assert_valid_json(&exported);
    assert!(exported.contains("\"traceEvents\""), "{exported}");
    assert!(exported.contains("\"ph\":\"X\""), "{exported}");

    let (ok, stdout, stderr) = cyclops(&["comm", trace]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("row sums consistent"), "{stdout}");
    assert!(stdout.contains("heatmap"), "{stdout}");
}

/// Without `--flight` the trace has no spans; `timeline --chrome` still
/// exports valid JSON by synthesizing phase spans from the records, and
/// `--flight` without `--trace` is rejected.
#[test]
fn timeline_synthesizes_chrome_spans_without_flight() {
    let trace = temp_path("noflight.jsonl");
    let trace = trace.to_str().unwrap();
    let (ok, _, stderr) = cyclops(&[
        "pagerank",
        "--dataset",
        "Amazon",
        "--scale",
        "0.03",
        "--trace",
        trace,
    ]);
    assert!(ok, "stderr: {stderr}");
    let chrome = temp_path("noflight.chrome.json");
    let chrome = chrome.to_str().unwrap();
    let (ok, stdout, stderr) = cyclops(&["timeline", trace, "--chrome", chrome]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("no flight-recorder spans"), "{stdout}");
    let exported = std::fs::read_to_string(chrome).unwrap();
    assert_valid_json(&exported);
    assert!(exported.contains("\"synthetic\":true"), "{exported}");

    let (ok, _, stderr) = cyclops(&["pagerank", "--dataset", "Amazon", "--flight"]);
    assert!(!ok);
    assert!(stderr.contains("--flight needs --trace"), "{stderr}");
}

#[test]
fn invalid_bucket_width_fails_with_nonzero_exit() {
    for width in ["NaN", "-3", "inf", "1e19", "nope"] {
        let (ok, _, stderr) = cyclops(&["sssp", "--dataset", "RoadCA", "--bucket-width", width]);
        assert!(!ok, "--bucket-width {width} must be rejected");
        assert!(
            stderr.contains("--bucket-width must be `auto` or a finite width")
                || stderr.contains("--bucket-width:"),
            "--bucket-width {width}: unexpected diagnostic {stderr:?}"
        );
    }
    let (ok, _, stderr) = cyclops(&[
        "sssp",
        "--dataset",
        "RoadCA",
        "--bucket-width",
        "1",
        "--bucket-mode",
        "greedy",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown bucket mode greedy"), "{stderr}");
}

#[test]
fn bucketed_sssp_matches_classic_distances_with_fewer_supersteps() {
    let graph_file = temp_path("bucketed.txt");
    cyclops(&[
        "gen",
        "--dataset",
        "RoadCA",
        "--scale",
        "0.05",
        "--output",
        graph_file.to_str().unwrap(),
    ]);
    let supersteps = |stdout: &str| -> u64 {
        let rest = stdout.split("sssp from 0: ").nth(1).expect("summary line");
        rest.split(' ').next().unwrap().parse().unwrap()
    };
    let classic_file = temp_path("classic-dist.txt");
    let (ok, stdout, stderr) = cyclops(&[
        "sssp",
        "--input",
        graph_file.to_str().unwrap(),
        "--output",
        classic_file.to_str().unwrap(),
    ]);
    assert!(ok, "classic: {stderr}");
    let classic_steps = supersteps(&stdout);

    for mode in ["det", "fast"] {
        let file = temp_path(&format!("bucketed-dist-{mode}.txt"));
        let (ok, stdout, stderr) = cyclops(&[
            "sssp",
            "--input",
            graph_file.to_str().unwrap(),
            "--bucket-width",
            "auto",
            "--bucket-mode",
            mode,
            "--output",
            file.to_str().unwrap(),
        ]);
        assert!(ok, "bucketed {mode}: {stderr}");
        assert!(
            supersteps(&stdout) < classic_steps,
            "bucketing must cut supersteps: {stdout} vs {classic_steps}"
        );
        assert_eq!(
            std::fs::read_to_string(&classic_file).unwrap(),
            std::fs::read_to_string(&file).unwrap(),
            "bucketed {mode} distances must be byte-identical to classic"
        );
    }
}

#[test]
fn engines_agree_via_cli_output_files() {
    let graph_file = temp_path("agree.txt");
    cyclops(&[
        "gen",
        "--dataset",
        "Amazon",
        "--scale",
        "0.03",
        "--output",
        graph_file.to_str().unwrap(),
    ]);
    let cy_file = temp_path("cy.txt");
    let ha_file = temp_path("ha.txt");
    for (engine, file) in [("cyclops", &cy_file), ("hama", &ha_file)] {
        let (ok, _, stderr) = cyclops(&[
            "sssp",
            "--input",
            graph_file.to_str().unwrap(),
            "--engine",
            engine,
            "--output",
            file.to_str().unwrap(),
        ]);
        assert!(ok, "{engine}: {stderr}");
    }
    assert_eq!(
        std::fs::read_to_string(&cy_file).unwrap(),
        std::fs::read_to_string(&ha_file).unwrap()
    );
}

#[test]
fn mem_json_matches_the_golden_report() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mem.jsonl");
    let golden = include_str!("golden/mem.json");
    let (ok, stdout, stderr) = cyclops(&["mem", fixture, "--json"]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(
        stdout, golden,
        "mem --json drifted from tests/golden/mem.json; \
         if the change is intentional, regenerate the golden file"
    );
    // Byte-identical on a second run: the report is a pure function of
    // the trace.
    let (_, again, _) = cyclops(&["mem", fixture, "--json"]);
    assert_eq!(stdout, again);
}

#[test]
fn mem_report_renders_worker_and_untagged_rows() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/mem.jsonl");
    let (ok, stdout, stderr) = cyclops(&["mem", fixture]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("peak bytes by worker and component"),
        "{stdout}"
    );
    assert!(stdout.contains("untagged"), "{stdout}");
    assert!(stdout.contains("replicas"), "{stdout}");
    assert!(stdout.contains("process rss: peak"), "{stdout}");

    let (ok, _, stderr) = cyclops(&["mem"]);
    assert!(!ok);
    assert!(stderr.contains("mem needs one trace file"), "{stderr}");

    // Memory samples ride on the trace file, so --mem alone is an error.
    let (ok, _, stderr) = cyclops(&[
        "pagerank",
        "--dataset",
        "Amazon",
        "--scale",
        "0.03",
        "--mem",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--mem needs --trace"), "{stderr}");
}

/// A trace from a run without `--mem` reports "no memory samples" rather
/// than an empty table or an error.
#[test]
fn mem_on_plain_trace_reports_no_samples() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/why_slow.jsonl");
    let (ok, stdout, stderr) = cyclops(&["mem", fixture]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("no memory samples recorded"), "{stdout}");
}

/// The tentpole's determinism contract: arming the tracking allocator with
/// `--mem` must not perturb the run — the trace (records and values alike)
/// stays `trace-diff`-identical to the same run without it, because memory
/// samples live on separate `{"mem":…}` lines outside the diff contract.
#[test]
fn mem_run_is_trace_diff_identical_to_plain_run() {
    let plain = temp_path("mem-equiv-plain.jsonl");
    let armed = temp_path("mem-equiv-armed.jsonl");
    let plain = plain.to_str().unwrap();
    let armed = armed.to_str().unwrap();
    let base = [
        "pagerank",
        "--dataset",
        "Amazon",
        "--scale",
        "0.04",
        "--machines",
        "2",
        "--workers",
        "2",
        "--values",
    ];
    let mut a: Vec<&str> = base.to_vec();
    a.extend_from_slice(&["--trace", plain]);
    let (ok, _, stderr) = cyclops(&a);
    assert!(ok, "stderr: {stderr}");
    let mut b: Vec<&str> = base.to_vec();
    b.extend_from_slice(&["--trace", armed, "--mem"]);
    let (ok, stdout, stderr) = cyclops(&b);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("memory samples appended"), "{stdout}");

    // Full diff including values digests: byte-for-byte identical records.
    let (ok, stdout, stderr) = cyclops(&["trace-diff", plain, armed, "--values"]);
    assert!(ok, "diff failed: {stdout} {stderr}");
    assert!(stdout.contains("traces agree"), "{stdout}");

    // And the armed trace actually carries mem samples.
    let contents = std::fs::read_to_string(armed).unwrap();
    assert!(
        contents.lines().any(|l| l.starts_with("{\"mem\":")),
        "no mem lines in {armed}"
    );
}

/// The why-slow migration paragraph, pinned against a golden fixture whose
/// superstep-1 records carry `migrated` counters: the JSON gains a
/// `migrations` array with integer-permille imbalance, and the human
/// report gains the paragraph. The migration-free golden
/// (`why_slow.json`, exact-matched above) proves static traces stay
/// byte-identical.
#[test]
fn why_slow_migration_paragraph_matches_the_golden_report() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/why_slow_migrate.jsonl"
    );
    let golden = include_str!("golden/why_slow_migrate.json");
    let (ok, stdout, stderr) = cyclops(&["why-slow", fixture, "--json"]);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(
        stdout, golden,
        "why-slow --json drifted from tests/golden/why_slow_migrate.json; \
         if the change is intentional, regenerate the golden file"
    );
    let (ok, stdout, stderr) = cyclops(&["why-slow", fixture]);
    assert!(ok, "stderr: {stderr}");
    assert!(
        stdout.contains("dynamic migration: 5 masters moved across 1 epoch boundaries"),
        "{stdout}"
    );
    assert!(stdout.contains("imb-before"), "{stdout}");
}

/// End-to-end dynamic migration on a skewed partition: `--migrate K`
/// actually moves masters, the run stays values-identical to
/// `--migrate off` under the aggregated `trace-diff --values-only`
/// contract, the communication matrix stays row-sum consistent across
/// the migration boundaries, and why-slow reports the paragraph.
#[test]
fn migrated_run_is_values_identical_and_comm_consistent() {
    let moved = temp_path("migrate-on.jsonl");
    let still = temp_path("migrate-off.jsonl");
    let moved = moved.to_str().unwrap();
    let still = still.to_str().unwrap();
    let base = [
        "sssp",
        "--dataset",
        "RoadCA",
        "--scale",
        "0.05",
        "--skew",
        "0.6",
        "--machines",
        "4",
        "--workers",
        "1",
        "--values",
    ];
    let mut a: Vec<&str> = base.to_vec();
    a.extend_from_slice(&["--migrate", "8", "--trace", moved]);
    let (ok, stdout, stderr) = cyclops(&a);
    assert!(ok, "stderr: {stderr}");
    let report = stdout
        .lines()
        .find(|l| l.starts_with("migration:"))
        .unwrap_or_else(|| panic!("no migration report in {stdout}"))
        .to_string();
    assert!(!report.contains("moves=0"), "nothing migrated: {report}");
    let mut b: Vec<&str> = base.to_vec();
    b.extend_from_slice(&["--migrate", "off", "--trace", still]);
    let (ok, stdout, stderr) = cyclops(&b);
    assert!(ok, "stderr: {stderr}");
    assert!(
        !stdout.contains("migration:"),
        "off run must not report migration: {stdout}"
    );

    // Same values, same superstep count, per the aggregated contract.
    let (ok, stdout, stderr) = cyclops(&["trace-diff", moved, still, "--values-only"]);
    assert!(ok, "diff failed: {stdout} {stderr}");
    assert!(stdout.contains("traces agree"), "{stdout}");

    // Comm rows keep summing to the sent counters across every migration
    // boundary — rewiring must not desynchronize the matrix.
    let (ok, stdout, stderr) = cyclops(&["comm", moved]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("row sums consistent"), "{stdout}");

    // The migrated trace carries the boundaries into why-slow.
    let (ok, stdout, stderr) = cyclops(&["why-slow", moved]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("dynamic migration:"), "{stdout}");
}

/// `--migrate` is cyclops-engine-only and mutually exclusive with the
/// bucketed scheduler; `--skew` rejects fractions outside [0, 1).
#[test]
fn migrate_flag_combinations_are_validated() {
    let (ok, _, stderr) = cyclops(&[
        "pagerank",
        "--dataset",
        "GWeb",
        "--scale",
        "0.03",
        "--engine",
        "hama",
        "--migrate",
        "4",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--migrate needs --engine cyclops"),
        "{stderr}"
    );
    let (ok, _, stderr) = cyclops(&[
        "bfs",
        "--dataset",
        "RoadCA",
        "--scale",
        "0.05",
        "--migrate",
        "4",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--migrate applies to pagerank and sssp"),
        "{stderr}"
    );
    let (ok, _, stderr) = cyclops(&[
        "sssp",
        "--dataset",
        "RoadCA",
        "--scale",
        "0.05",
        "--migrate",
        "4",
        "--bucket-width",
        "2",
    ]);
    assert!(!ok);
    assert!(
        stderr.contains("--migrate and --bucket-width are mutually exclusive"),
        "{stderr}"
    );
    let (ok, _, stderr) = cyclops(&["sssp", "--dataset", "RoadCA", "--skew", "1.5"]);
    assert!(!ok);
    assert!(stderr.contains("--skew"), "{stderr}");
}
