//! Dynamic migration equivalence matrix (ISSUE 10).
//!
//! `--migrate` moves hot masters between workers at superstep boundaries,
//! but the planner's inputs are deterministic compute-cost counters and
//! the rewired plan preserves the immutable-view contract, so algorithm
//! results must be **bitwise identical** to the static run at every epoch
//! length, on every engine topology. These tests pin that for PageRank
//! and SSSP on deliberately skewed partitions, across epoch lengths
//! {4, 8} × flat Cyclops and CyclopsMT, down to the values-mode trace —
//! and pin the migrated run itself as bitwise stable across thread
//! counts.

use cyclops::prelude::*;
use cyclops_algos::pagerank::{run_cyclops_pagerank_migrated, run_cyclops_pagerank_tuned};
use cyclops_algos::sssp::{run_cyclops_sssp_migrated, run_cyclops_sssp_tuned};
use cyclops_engine::{CyclopsResult, MigrationReport, Sched};
use cyclops_net::trace::{diff, RunTrace, TraceSink};
use cyclops_partition::{EdgeCutPartition, MigrationConfig};

const SPARSE: f64 = 0.015;

fn finish(mut sink: TraceSink) -> RunTrace {
    assert_eq!(sink.dropped_records(), 0, "ring buffer overflowed");
    RunTrace {
        spans: Vec::new(),
        mem: Vec::new(),
        meta: sink.meta().clone(),
        records: sink.take_records(),
    }
}

/// A pathologically skewed assignment: hash-partition, then pile the
/// first 60% of vertex ids onto worker 0 (the CLI's `--skew 0.6`).
fn skewed(g: &Graph, workers: usize) -> EdgeCutPartition {
    let mut p = HashPartitioner.partition(g, workers);
    let cut = (0.6 * g.num_vertices() as f64) as usize;
    for a in p.assignment.iter_mut().take(cut) {
        *a = 0;
    }
    p
}

/// Both engine topologies with the same worker count, so one partition —
/// and therefore one migration schedule — serves both.
fn clusters() -> Vec<ClusterSpec> {
    vec![ClusterSpec::flat(4, 1), ClusterSpec::mt(4, 2, 1)]
}

fn assert_matches_static(
    label: &str,
    report: &MigrationReport,
    base: &CyclopsResult<f64, f64>,
    migrated: &CyclopsResult<f64, f64>,
    base_trace: &RunTrace,
    migrated_trace: &RunTrace,
) {
    assert!(
        report.migrations_total > 0,
        "{label}: skew must trigger moves"
    );
    assert_eq!(migrated.supersteps, base.supersteps, "{label}");
    for (v, (a, b)) in base.values.iter().zip(&migrated.values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label} vertex {v}");
    }
    assert_eq!(
        diff::first_value_divergence(base_trace, migrated_trace),
        None,
        "{label}: values-mode trace must match the static run"
    );
}

#[test]
fn migrated_pagerank_matches_static_across_topologies() {
    let g = Dataset::GWeb.generate_scaled(0.04, 11);
    let mut per_cluster: Vec<CyclopsResult<f64, f64>> = Vec::new();
    for cluster in clusters() {
        let p = skewed(&g, cluster.num_workers());
        let sink0 = TraceSink::with_values("cyclops", &cluster);
        let base = run_cyclops_pagerank_tuned(
            &g,
            &p,
            &cluster,
            1e-8,
            200,
            Sched::Dynamic,
            SPARSE,
            0,
            Some(&sink0),
        );
        let base_trace = finish(sink0);
        for every in [4usize, 8] {
            let sink = TraceSink::with_values("cyclops", &cluster);
            let (migrated, report) = run_cyclops_pagerank_migrated(
                &g,
                &p,
                &cluster,
                1e-8,
                200,
                Sched::Dynamic,
                SPARSE,
                0,
                every,
                MigrationConfig::default(),
                Some(&sink),
            );
            assert_matches_static(
                &format!("{cluster:?} every={every}"),
                &report,
                &base,
                &migrated,
                &base_trace,
                &finish(sink),
            );
            if every == 8 {
                per_cluster.push(migrated);
            }
        }
    }
    // The migration schedule is a pure function of graph + partition +
    // superstep index, so the migrated run is itself bitwise stable
    // across thread counts.
    let (flat, mt) = (&per_cluster[0], &per_cluster[1]);
    assert_eq!(flat.supersteps, mt.supersteps);
    for (a, b) in flat.values.iter().zip(&mt.values) {
        assert_eq!(a.to_bits(), b.to_bits(), "flat vs MT migrated run");
    }
}

#[test]
fn migrated_sssp_matches_static_across_topologies() {
    let g = Dataset::RoadCa.generate_scaled(0.04, 7);
    let mut traces: Vec<RunTrace> = Vec::new();
    for cluster in clusters() {
        let p = skewed(&g, cluster.num_workers());
        let sink0 = TraceSink::with_values("cyclops", &cluster);
        let base = run_cyclops_sssp_tuned(
            &g,
            &p,
            &cluster,
            0,
            100_000,
            Sched::Dynamic,
            SPARSE,
            0,
            Some(&sink0),
        );
        let base_trace = finish(sink0);
        for every in [4usize, 8] {
            let sink = TraceSink::with_values("cyclops", &cluster);
            let (migrated, report) = run_cyclops_sssp_migrated(
                &g,
                &p,
                &cluster,
                0,
                100_000,
                Sched::Dynamic,
                SPARSE,
                0,
                every,
                MigrationConfig::default(),
                Some(&sink),
            );
            let trace = finish(sink);
            assert_matches_static(
                &format!("{cluster:?} every={every}"),
                &report,
                &base,
                &migrated,
                &base_trace,
                &trace,
            );
            if every == 8 {
                traces.push(trace);
            }
        }
    }
    // Same schedule on both topologies: even the values-mode *traces* of
    // the migrated runs agree across thread counts once aggregated per
    // superstep.
    assert_eq!(
        diff::first_value_divergence(&traces[0], &traces[1]),
        None,
        "migrated flat vs MT trace"
    );
}
