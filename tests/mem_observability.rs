//! Exactness tests for the tagged tracking allocator: the static audit
//! (`CyclopsPlan::memory_breakdown`) must equal the live bytes the armed
//! allocator tracked for the `Plan`/`Replicas`/`DirectSlots` components,
//! and memory samples must round-trip through the trace file format.
//!
//! This lives in its own test binary because arming is process-global and
//! one-way; the `#[global_allocator]` below makes every allocation in this
//! process flow through the tracker.

use cyclops::engine::CyclopsPlan;
use cyclops::obs::mem::{self, Component};
use cyclops::prelude::*;
use std::sync::Mutex;

#[global_allocator]
static ALLOC: cyclops::obs::MemAlloc = cyclops::obs::MemAlloc;

/// Live-byte assertions read process-global counters, so the tests that
/// make them serialize on this lock (the harness runs tests in threads).
static LOCK: Mutex<()> = Mutex::new(());

fn plan_components_live() -> [i64; 3] {
    [
        mem::live_bytes(Component::Plan),
        mem::live_bytes(Component::Replicas),
        mem::live_bytes(Component::DirectSlots),
    ]
}

/// The audit contract: after construction (which ends with
/// `attribute_memory` re-materializing every vector at exact capacity
/// under its component scope), the tracked live deltas equal the
/// capacity-computed breakdown byte for byte — and dropping the plan
/// returns every component to its baseline.
#[test]
fn plan_breakdown_matches_tracked_bytes_exactly() {
    let _guard = LOCK.lock().unwrap();
    mem::arm();
    let g = Dataset::Amazon.generate_scaled(0.05, Dataset::Amazon.default_seed());
    let partition = HashPartitioner.partition(&g, 4);
    for threshold in [0u32, 4, u32::MAX] {
        let before = plan_components_live();
        let plan = CyclopsPlan::build_parallel_with_threshold(&g, &partition, threshold);
        let after = plan_components_live();
        let b = plan.memory_breakdown();
        assert_eq!(
            (after[0] - before[0]) as usize,
            b.plan,
            "Plan bytes diverge from the audit at threshold {threshold}"
        );
        assert_eq!(
            (after[1] - before[1]) as usize,
            b.replicas,
            "Replicas bytes diverge from the audit at threshold {threshold}"
        );
        assert_eq!(
            (after[2] - before[2]) as usize,
            b.direct_slots,
            "DirectSlots bytes diverge from the audit at threshold {threshold}"
        );
        drop(plan);
        assert_eq!(
            plan_components_live(),
            before,
            "drop did not return components to baseline at threshold {threshold}"
        );
    }
}

/// The serial builder attributes identically (it shares
/// `attribute_memory`), and the replica ledger shrinks as the threshold
/// trades replicas for direct slots — the bench panel's claim in
/// miniature.
#[test]
fn serial_build_attributes_and_threshold_shrinks_replicas() {
    let _guard = LOCK.lock().unwrap();
    mem::arm();
    let g = Dataset::Amazon.generate_scaled(0.05, Dataset::Amazon.default_seed());
    let partition = HashPartitioner.partition(&g, 4);

    let before = plan_components_live();
    let full = CyclopsPlan::build_with_threshold(&g, &partition, 0);
    let after = plan_components_live();
    let bf = full.memory_breakdown();
    assert_eq!((after[1] - before[1]) as usize, bf.replicas);

    let hybrid = CyclopsPlan::build_with_threshold(&g, &partition, 8);
    let bh = hybrid.memory_breakdown();
    assert!(
        bh.replicas < bf.replicas,
        "threshold 8 must spend fewer replica bytes than full replication \
         ({} vs {})",
        bh.replicas,
        bf.replicas
    );
    assert!(
        bh.direct_slots > bf.direct_slots,
        "threshold 8 must spend more direct-slot bytes than full replication"
    );
}

/// Memory samples survive the JSONL round trip: `sample` → `take_samples`
/// → `append_mem_jsonl` → `read_jsonl` yields the same values, parked in
/// `RunTrace::mem` away from the record stream (the trace-diff contract).
#[test]
fn samples_round_trip_through_the_trace_file() {
    let _guard = LOCK.lock().unwrap();
    mem::arm();
    let dir = std::env::temp_dir().join(format!("cyclops-memobs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.jsonl");
    let path = path.to_str().unwrap();
    std::fs::write(
        path,
        "{\"engine\":\"cyclops\",\"cluster\":\"1x1x1\",\"workers\":1,\"values\":false}\n\
         {\"superstep\":0,\"worker\":0,\"parse_ns\":1,\"compute_ns\":1,\"send_ns\":1,\
         \"sync_ns\":1,\"frontier\":1,\"computed\":1,\"activated\":0,\"converged_delta\":0,\
         \"drained\":0,\"messages\":0,\"bytes\":0,\"checkpoint\":false}\n",
    )
    .unwrap();

    mem::take_samples(); // discard anything a previous test parked
    mem::sample(7, 0);
    let samples = mem::take_samples();
    assert!(!samples.is_empty(), "armed sample() must record");
    let n = cyclops::net::trace::append_mem_jsonl(path, &samples).unwrap();
    assert_eq!(n as usize, samples.len());

    let trace = cyclops::net::trace::read_jsonl(path).unwrap();
    assert_eq!(trace.mem.len(), samples.len());
    assert_eq!(trace.records.len(), 1, "mem lines must not enter records");
    let rec = trace.mem.iter().find(|m| m.worker == 0).unwrap();
    assert_eq!(rec.superstep, 7);
    let orig = samples.iter().find(|s| s.worker == 0).unwrap();
    assert_eq!(rec.live, orig.live);
    assert_eq!(rec.peak, orig.peak);
}
