//! Regression tests for the superstep-trace observability layer.
//!
//! Three properties: (1) all three engines emit one trace record per
//! superstep × worker and agree on superstep counts for the same fixed-
//! iteration run; (2) `trace::diff` pinpoints a seeded single-vertex
//! perturbation down to the exact superstep, worker, and vertex; (3)
//! checkpoint-resume stays deterministic with the fixed `inject` routing
//! under `InboxMode::Sharded` with R > 1 receiver lanes.

use cyclops::prelude::*;
use cyclops_algos::pagerank::{
    run_bsp_pagerank_traced, run_cyclops_pagerank_traced, run_gas_pagerank_traced, CyclopsPageRank,
};
use cyclops_engine::{
    run_cyclops, run_cyclops_from_checkpoint, run_cyclops_traced, Convergence, CyclopsConfig,
    CyclopsContext, CyclopsProgram,
};
use cyclops_net::trace::{diff, read_jsonl, RunTrace, TraceSink};
use cyclops_net::{InboxMode, Transport};
use cyclops_partition::{RandomVertexCut, VertexCutPartitioner};

fn finish(mut sink: TraceSink) -> RunTrace {
    assert_eq!(sink.dropped_records(), 0, "ring buffer overflowed");
    RunTrace {
        spans: Vec::new(),
        mem: Vec::new(),
        meta: sink.meta().clone(),
        records: sink.take_records(),
    }
}

#[test]
fn engines_emit_identical_superstep_counts_for_the_same_run() {
    let g = Dataset::Amazon.generate_scaled(0.05, 1);
    let cluster = ClusterSpec::flat(2, 2);
    let edge_cut = HashPartitioner.partition(&g, 4);
    let vertex_cut = RandomVertexCut::default().partition(&g, 4);
    let supersteps = 12;

    // epsilon = 0 keeps every vertex active, so each engine runs its full
    // fixed budget and the traces must agree on the superstep count.
    let cy_sink = TraceSink::new("cyclops", &cluster);
    let cy = run_cyclops_pagerank_traced(&g, &edge_cut, &cluster, 0.0, supersteps, Some(&cy_sink));
    let bsp_sink = TraceSink::new("bsp", &cluster);
    let bsp = run_bsp_pagerank_traced(&g, &edge_cut, &cluster, 0.0, supersteps, Some(&bsp_sink));
    let gas_sink = TraceSink::new("gas", &cluster);
    let gas = run_gas_pagerank_traced(&g, &vertex_cut, &cluster, 0.0, supersteps, Some(&gas_sink));

    for (name, trace, ran) in [
        ("cyclops", finish(cy_sink), cy.supersteps),
        ("bsp", finish(bsp_sink), bsp.supersteps),
        ("gas", finish(gas_sink), gas.supersteps),
    ] {
        assert_eq!(
            trace.supersteps(),
            supersteps as u64,
            "{name} superstep count"
        );
        assert_eq!(ran, supersteps, "{name} result superstep count");
        assert_eq!(
            trace.records.len(),
            supersteps * cluster.num_workers(),
            "{name}: one record per superstep x worker"
        );
        // Records arrive sorted by (superstep, worker) with no gaps.
        for (i, r) in trace.records.iter().enumerate() {
            assert_eq!(r.superstep as usize, i / cluster.num_workers(), "{name}");
            assert_eq!(r.worker as usize, i % cluster.num_workers(), "{name}");
        }
    }
}

/// Delegates to [`CyclopsPageRank`] but overwrites one vertex's publication
/// at one superstep — the smallest perturbation the diff must localise.
struct PerturbedPageRank {
    inner: CyclopsPageRank,
    victim: VertexId,
    at: usize,
}

impl CyclopsProgram for PerturbedPageRank {
    type Value = f64;
    type Message = f64;

    fn init(&self, v: VertexId, g: &Graph) -> f64 {
        self.inner.init(v, g)
    }

    fn init_message(&self, v: VertexId, g: &Graph, value: &f64) -> Option<f64> {
        self.inner.init_message(v, g, value)
    }

    fn compute(&self, ctx: &mut CyclopsContext<'_, f64, f64>) {
        self.inner.compute(ctx);
        if ctx.vertex() == self.victim && ctx.superstep() == self.at {
            ctx.activate_neighbors(1.0);
        }
    }
}

#[test]
fn trace_diff_pinpoints_a_seeded_single_vertex_perturbation() {
    let g = Dataset::Amazon.generate_scaled(0.05, 2);
    let cluster = ClusterSpec::flat(2, 2);
    let p = HashPartitioner.partition(&g, 4);
    let victim: VertexId = (0..g.num_vertices() as VertexId)
        .find(|&v| g.out_degree(v) > 0)
        .expect("graph has a vertex with out-edges");
    let at = 3usize;
    let config = CyclopsConfig {
        cluster,
        max_supersteps: 8,
        convergence: Convergence::ActiveVertices,
        ..Default::default()
    };

    let base_sink = TraceSink::with_values("cyclops", &cluster);
    run_cyclops_traced(
        &CyclopsPageRank { epsilon: 0.0 },
        &g,
        &p,
        &config,
        Some(&base_sink),
    );
    let perturbed_sink = TraceSink::with_values("cyclops", &cluster);
    run_cyclops_traced(
        &PerturbedPageRank {
            inner: CyclopsPageRank { epsilon: 0.0 },
            victim,
            at,
        },
        &g,
        &p,
        &config,
        Some(&perturbed_sink),
    );

    // Round-trip both traces through the JSONL files the CLI's trace-diff
    // consumes, so the test covers exactly what `cyclops trace-diff` sees.
    let dir = std::env::temp_dir().join(format!("cyclops-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("base.jsonl");
    let path_b = dir.join("perturbed.jsonl");
    finish_to(base_sink, path_a.to_str().unwrap());
    finish_to(perturbed_sink, path_b.to_str().unwrap());
    let a = read_jsonl(path_a.to_str().unwrap()).unwrap();
    let b = read_jsonl(path_b.to_str().unwrap()).unwrap();

    // Overwriting one publication changes no deterministic counter (same
    // message counts, same byte volume, same activation with epsilon = 0),
    // so the counter-level diff sees identical runs...
    assert_eq!(diff::first_divergence(&a, &b, false), None);

    // ...but value mode names the exact superstep, worker, and vertex.
    let d = diff::first_divergence(&a, &b, true).expect("values diff must detect perturbation");
    assert_eq!(d.superstep, at as u64, "first divergent superstep");
    assert_eq!(
        d.worker,
        u64::from(p.part_of(victim)),
        "first divergent worker"
    );
    assert_eq!(d.counter, "publication_digest");
    assert_eq!(d.vertex, Some(victim), "first divergent vertex");

    std::fs::remove_dir_all(&dir).ok();
}

fn finish_to(mut sink: TraceSink, path: &str) {
    assert_eq!(sink.dropped_records(), 0, "ring buffer overflowed");
    sink.write_jsonl(path).unwrap();
}

#[test]
fn checkpoint_resume_is_deterministic_under_sharded_mt_cluster() {
    // CyclopsMT runs on InboxMode::Sharded; mt(2, 2, 2) gives R = 2
    // receiver lanes per worker — the shape where the lane-0 inject bug
    // used to break lane disjointness. Resuming from every checkpoint must
    // reproduce the full run bitwise.
    let g = Dataset::GWeb.generate_scaled(0.05, 4);
    let p = HashPartitioner.partition(&g, 2);
    let program = CyclopsPageRank { epsilon: 0.0 };
    let config = CyclopsConfig {
        cluster: ClusterSpec::mt(2, 2, 2),
        max_supersteps: 18,
        checkpoint_every: Some(6),
        ..Default::default()
    };
    let full = run_cyclops(&program, &g, &p, &config);
    assert!(!full.checkpoints.is_empty(), "run captured no checkpoints");
    for cp in &full.checkpoints {
        // max_supersteps is a *global* cap on the superstep index, so the
        // resumed run reuses the original cap unchanged and still stops at
        // the same place the crashed run would have.
        let resumed = run_cyclops_from_checkpoint(
            &program,
            &g,
            &p,
            &CyclopsConfig {
                checkpoint_every: None,
                ..config.clone()
            },
            cp,
        );
        assert_eq!(
            resumed.supersteps, full.supersteps,
            "superstep count after resume"
        );
        assert_eq!(
            resumed.values, full.values,
            "resume from superstep {}",
            cp.superstep
        );
    }
}

#[test]
fn resume_inject_preserves_lane_disjointness_under_sharded() {
    // The resume path re-injects a checkpoint's in-flight messages through
    // Transport::inject. Under Sharded with R = 2 those must land in the
    // dedicated injection lane so the two receiver threads never apply
    // messages for the same replica from different lanes: every batch is
    // claimed by exactly one receiver, and nothing is lost or duplicated.
    let spec = ClusterSpec::mt(2, 3, 2);
    let t: Transport<u32> = Transport::new(spec, InboxMode::Sharded);
    let epoch = 4;
    // Live senders on worker 1 (threads 3..6 of the flat thread index).
    t.send(3, 0, vec![10, 11], epoch);
    t.send(4, 0, vec![12], epoch);
    // Checkpointed in-flight messages re-injected at resume.
    t.inject(0, vec![90, 91, 92], epoch + 1);

    let receivers = spec.receivers_per_worker;
    let mut seen = Vec::new();
    for r in 0..receivers {
        for (lane, batch) in t.drain_lanes_partitioned(0, epoch + 1, r, receivers) {
            assert_eq!(lane % receivers, r, "lane {lane} drained by wrong receiver");
            assert!(
                lane < spec.total_threads() || batch.iter().all(|m| *m >= 90),
                "sender lane {lane} contains injected messages"
            );
            seen.extend(batch);
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![10, 11, 12, 90, 91, 92]);
    assert_eq!(
        t.pending(0),
        0,
        "messages left behind after partitioned drain"
    );
}

#[test]
fn comm_matrix_rows_sum_to_sent_counters_across_engines() {
    // Every engine populates the per-record communication matrix through
    // the same per-destination tracer cells its `messages`/`bytes` totals
    // come from, so the row sums must match the totals exactly — the
    // consistency contract `cyclops comm` enforces with a non-zero exit.
    let g = Dataset::Amazon.generate_scaled(0.05, 5);
    let cluster = ClusterSpec::flat(2, 2);
    let edge_cut = HashPartitioner.partition(&g, 4);
    let vertex_cut = RandomVertexCut::default().partition(&g, 4);
    let supersteps = 6;

    let cy_sink = TraceSink::new("cyclops", &cluster);
    run_cyclops_pagerank_traced(&g, &edge_cut, &cluster, 0.0, supersteps, Some(&cy_sink));
    let bsp_sink = TraceSink::new("bsp", &cluster);
    run_bsp_pagerank_traced(&g, &edge_cut, &cluster, 0.0, supersteps, Some(&bsp_sink));
    let gas_sink = TraceSink::new("gas", &cluster);
    run_gas_pagerank_traced(&g, &vertex_cut, &cluster, 0.0, supersteps, Some(&gas_sink));

    for (name, trace) in [
        ("cyclops", finish(cy_sink)),
        ("bsp", finish(bsp_sink)),
        ("gas", finish(gas_sink)),
    ] {
        let mut with_rows = 0usize;
        let mut cross_machine_bytes = 0u64;
        for r in &trace.records {
            assert!(
                r.comm_consistent(),
                "{name}: superstep {} worker {}: comm rows {:?} disagree with \
                 messages={} bytes={}",
                r.superstep,
                r.worker,
                r.comm,
                r.messages,
                r.bytes
            );
            for e in &r.comm {
                assert!(
                    (e.dst as usize) < cluster.num_workers(),
                    "{name}: bogus dst {}",
                    e.dst
                );
                assert!(
                    e.messages > 0 || e.bytes > 0,
                    "{name}: all-zero comm row for dst {} survived commit",
                    e.dst
                );
                cross_machine_bytes += e.bytes;
            }
            with_rows += usize::from(!r.comm.is_empty());
        }
        assert!(with_rows > 0, "{name}: no comm rows recorded");
        assert!(
            cross_machine_bytes > 0,
            "{name}: no cross-machine bytes attributed to any pair"
        );
    }
}

#[test]
fn comm_matrix_is_identical_across_thread_counts() {
    // The matrix is a pure function of graph + partition: engines merge
    // thread outboxes into one batch per (worker, dest) per superstep, so
    // the per-pair (dst, messages, bytes) splits must be bitwise identical
    // however many compute threads share a worker — under the dynamic
    // chunk-claiming scheduler and the deterministic bucket mode alike.
    // `diff::first_divergence` compares the comm column, so trace-diff
    // covers the same promise.
    type CommRows = Vec<(u64, u64, Vec<(u32, u64, u64)>)>;
    let comm_of = |trace: &RunTrace| -> CommRows {
        trace
            .records
            .iter()
            .map(|r| {
                (
                    r.superstep,
                    r.worker,
                    r.comm
                        .iter()
                        .map(|e| (e.dst, e.messages, e.bytes))
                        .collect(),
                )
            })
            .collect()
    };

    // Dynamic scheduler, PageRank.
    let g = Dataset::GWeb.generate_scaled(0.05, 6);
    let p = HashPartitioner.partition(&g, 2);
    let mut base: Option<RunTrace> = None;
    for threads in [1usize, 2, 4] {
        let cluster = ClusterSpec::mt(2, threads, 1);
        let sink = TraceSink::new("cyclops", &cluster);
        cyclops_algos::pagerank::run_cyclops_pagerank_tuned(
            &g,
            &p,
            &cluster,
            0.0,
            8,
            cyclops_engine::Sched::Dynamic,
            0.015,
            0,
            Some(&sink),
        );
        let trace = finish(sink);
        match &base {
            None => base = Some(trace),
            Some(b) => {
                assert_eq!(
                    diff::first_divergence(b, &trace, false),
                    None,
                    "dynamic sched diverged at {threads} threads"
                );
                assert_eq!(
                    comm_of(b),
                    comm_of(&trace),
                    "comm matrix differs at {threads} threads (dynamic sched)"
                );
            }
        }
    }

    // Deterministic bucket mode, delta-stepping SSSP.
    let g = Dataset::RoadCa.generate_scaled(0.05, 7);
    let p = HashPartitioner.partition(&g, 2);
    let mut base: Option<RunTrace> = None;
    for threads in [1usize, 3] {
        let cluster = ClusterSpec::mt(2, threads, 1);
        let sink = TraceSink::new("cyclops", &cluster);
        cyclops_algos::sssp::run_cyclops_sssp_bucketed(
            &g,
            &p,
            &cluster,
            0,
            100_000,
            0.0, // auto width
            cyclops_net::BucketMode::Det,
            0,
            Some(&sink),
        );
        let trace = finish(sink);
        match &base {
            None => base = Some(trace),
            Some(b) => {
                assert_eq!(
                    diff::first_divergence(b, &trace, false),
                    None,
                    "bucketed det diverged at {threads} threads"
                );
                assert_eq!(
                    comm_of(b),
                    comm_of(&trace),
                    "comm matrix differs at {threads} threads (bucket-mode det)"
                );
            }
        }
    }
}

#[test]
fn hot_vertex_capture_works_across_all_three_engines() {
    // Every engine feeds its per-thread Space-Saving sketches through the
    // same tracer plumbing; with --hot k enabled each record must carry at
    // most k entries, weight-descending, naming real vertices — and with
    // it disabled (the default) the hot lists must stay empty.
    let g = Dataset::Amazon.generate_scaled(0.05, 3);
    let cluster = ClusterSpec::flat(2, 2);
    let edge_cut = HashPartitioner.partition(&g, 4);
    let vertex_cut = RandomVertexCut::default().partition(&g, 4);
    let supersteps = 6;
    let k = 4usize;

    let cy_sink = TraceSink::new("cyclops", &cluster).with_hot_k(k);
    run_cyclops_pagerank_traced(&g, &edge_cut, &cluster, 0.0, supersteps, Some(&cy_sink));
    let bsp_sink = TraceSink::new("bsp", &cluster).with_hot_k(k);
    run_bsp_pagerank_traced(&g, &edge_cut, &cluster, 0.0, supersteps, Some(&bsp_sink));
    let gas_sink = TraceSink::new("gas", &cluster).with_hot_k(k);
    run_gas_pagerank_traced(&g, &vertex_cut, &cluster, 0.0, supersteps, Some(&gas_sink));

    for (name, trace) in [
        ("cyclops", finish(cy_sink)),
        ("bsp", finish(bsp_sink)),
        ("gas", finish(gas_sink)),
    ] {
        let mut non_empty = 0usize;
        for r in &trace.records {
            assert!(r.hot.len() <= k, "{name}: {} entries > k", r.hot.len());
            for w in r.hot.windows(2) {
                assert!(w[0].1 >= w[1].1, "{name}: hot not weight-descending");
            }
            for &(v, cost) in &r.hot {
                assert!((v as usize) < g.num_vertices(), "{name}: bogus vertex {v}");
                assert!(cost > 0, "{name}: zero-cost hot entry");
            }
            non_empty += usize::from(!r.hot.is_empty());
        }
        assert!(non_empty > 0, "{name}: no hot vertices captured at all");
    }

    // Disabled path: no sketches, no hot content in any record.
    let off_sink = TraceSink::new("cyclops", &cluster);
    run_cyclops_pagerank_traced(&g, &edge_cut, &cluster, 0.0, supersteps, Some(&off_sink));
    let off = finish(off_sink);
    assert!(off.records.iter().all(|r| r.hot.is_empty()));
}
