//! Cross-engine integration tests: the three engines must agree with each
//! other and with the sequential references on every workload, across
//! cluster shapes and partitioners.

use cyclops::prelude::*;
use cyclops_algos::als::{reference_als, run_bsp_als, run_cyclops_als, AlsParams};
use cyclops_algos::cd::{run_bsp_cd, run_cyclops_cd};
use cyclops_algos::pagerank::{run_bsp_pagerank, run_cyclops_pagerank, run_gas_pagerank};
use cyclops_algos::sssp::{run_bsp_sssp, run_cyclops_sssp, run_gas_sssp};
use cyclops_graph::reference;
use cyclops_partition::{
    GreedyVertexCut, MultilevelPartitioner, RandomVertexCut, VertexCutPartitioner,
};

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .filter(|(x, y)| x.is_finite() || y.is_finite())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn pagerank_all_engines_match_reference_on_gweb() {
    let g = Dataset::GWeb.generate_scaled(0.05, 1);
    let (expected, _) = reference::pagerank(&g, 0.0, 25);
    let cluster = ClusterSpec::flat(3, 2);

    let edge_cut = HashPartitioner.partition(&g, 6);
    let cy = run_cyclops_pagerank(&g, &edge_cut, &cluster, 0.0, 25);
    assert!(max_abs_diff(&cy.values, &expected) < 1e-14, "cyclops");

    let bsp = run_bsp_pagerank(&g, &edge_cut, &cluster, 0.0, 26);
    assert!(max_abs_diff(&bsp.values, &expected) < 1e-11, "bsp");

    let vertex_cut = RandomVertexCut::default().partition(&g, 6);
    let gas = run_gas_pagerank(&g, &vertex_cut, &cluster, 0.0, 25);
    assert!(max_abs_diff(&gas.values, &expected) < 1e-11, "gas");
}

#[test]
fn pagerank_partitioner_does_not_change_cyclops_results() {
    let g = Dataset::Amazon.generate_scaled(0.05, 2);
    let cluster = ClusterSpec::flat(2, 2);
    let hash = HashPartitioner.partition(&g, 4);
    let metis = MultilevelPartitioner::default().partition(&g, 4);
    let a = run_cyclops_pagerank(&g, &hash, &cluster, 0.0, 30);
    let b = run_cyclops_pagerank(&g, &metis, &cluster, 0.0, 30);
    // Same deterministic synchronous iteration: identical results.
    assert_eq!(a.values, b.values);
    // But Metis needs fewer replicas and messages.
    assert!(b.replication_factor <= a.replication_factor);
}

#[test]
fn sssp_all_engines_match_dijkstra_on_road() {
    let g = Dataset::RoadCa.generate_scaled(0.05, 3);
    let expected = reference::sssp(&g, 0);
    let cluster = ClusterSpec::flat(3, 2);
    let edge_cut = HashPartitioner.partition(&g, 6);

    for (name, values) in [
        (
            "cyclops",
            run_cyclops_sssp(&g, &edge_cut, &cluster, 0, 100_000).values,
        ),
        (
            "bsp",
            run_bsp_sssp(&g, &edge_cut, &cluster, 0, 100_000).values,
        ),
        (
            "gas",
            run_gas_sssp(
                &g,
                &GreedyVertexCut::default().partition(&g, 6),
                &cluster,
                0,
                100_000,
            )
            .values,
        ),
    ] {
        for (i, (a, e)) in values.iter().zip(&expected).enumerate() {
            if e.is_finite() {
                assert!((a - e).abs() < 1e-9, "{name} vertex {i}: {a} vs {e}");
            } else {
                assert!(a.is_infinite(), "{name} vertex {i} should be unreachable");
            }
        }
    }
}

#[test]
fn cd_engines_match_reference_on_dblp() {
    let g = Dataset::Dblp.generate_scaled(0.1, 4);
    let sweeps = 10;
    let expected = reference::label_propagation(&g, sweeps);
    let cluster = ClusterSpec::flat(2, 3);
    let p = HashPartitioner.partition(&g, 6);
    let cy = run_cyclops_cd(&g, &p, &cluster, sweeps);
    assert_eq!(cy.values, expected, "cyclops");
    let bsp = run_bsp_cd(&g, &p, &cluster, sweeps + 1);
    assert_eq!(bsp.values, expected, "bsp");
}

#[test]
fn als_engines_match_reference_on_syn_gl() {
    let g = Dataset::SynGl.generate_scaled(0.05, 5);
    let params = AlsParams {
        users: Dataset::SynGl.bipartite_users_at(0.05).unwrap(),
        dim: 4,
        lambda: 0.1,
    };
    let expected = reference_als(&g, params, 2);
    let cluster = ClusterSpec::flat(2, 2);
    let p = HashPartitioner.partition(&g, 4);
    let cy = run_cyclops_als(&g, &p, &cluster, params, 2);
    let bsp = run_bsp_als(&g, &p, &cluster, params, 2);
    for (v, exp) in expected.iter().enumerate() {
        for (d, e) in exp.iter().enumerate() {
            assert!((cy.values[v][d] - e).abs() < 1e-9, "cyclops v{v}");
            assert!((bsp.values[v][d] - e).abs() < 1e-8, "bsp v{v}");
        }
    }
}

#[test]
fn cyclops_mt_configs_agree_with_flat() {
    // The same partition computed by wildly different thread/receiver
    // configurations must produce identical results.
    let g = Dataset::GWeb.generate_scaled(0.03, 6);
    let p = HashPartitioner.partition(&g, 4);
    let base = run_cyclops_pagerank(&g, &p, &ClusterSpec::flat(4, 1), 0.0, 20);
    for spec in [
        ClusterSpec::mt(4, 2, 1),
        ClusterSpec::mt(4, 4, 2),
        ClusterSpec::mt(4, 4, 4),
        ClusterSpec {
            machines: 2,
            workers_per_machine: 2,
            threads_per_worker: 3,
            receivers_per_worker: 2,
        },
    ] {
        let r = run_cyclops_pagerank(&g, &p, &spec, 0.0, 20);
        assert_eq!(r.values, base.values, "config {spec}");
    }
}

#[test]
fn network_model_changes_time_not_results() {
    let g = Dataset::Amazon.generate_scaled(0.05, 9);
    let cluster = ClusterSpec::flat(3, 1);
    let p = HashPartitioner.partition(&g, 3);
    let ideal = cyclops_engine::run_cyclops(
        &cyclops_algos::pagerank::CyclopsPageRank { epsilon: 0.0 },
        &g,
        &p,
        &cyclops_engine::CyclopsConfig {
            cluster,
            max_supersteps: 10,
            ..Default::default()
        },
    );
    let modeled = cyclops_engine::run_cyclops(
        &cyclops_algos::pagerank::CyclopsPageRank { epsilon: 0.0 },
        &g,
        &p,
        &cyclops_engine::CyclopsConfig {
            cluster,
            max_supersteps: 10,
            network: cyclops_net::NetworkModel::gigabit(),
            ..Default::default()
        },
    );
    assert_eq!(ideal.values, modeled.values);
    assert_eq!(ideal.counters.messages, modeled.counters.messages);
    assert!(modeled.elapsed > ideal.elapsed);
}

#[test]
fn message_counts_follow_the_papers_ordering() {
    // Cyclops <= Hama messages; GAS ~5x the replicas' worth.
    let g = Dataset::Amazon.generate_scaled(0.1, 7);
    let cluster = ClusterSpec::flat(3, 2);
    let edge_cut = HashPartitioner.partition(&g, 6);
    let eps = 1e-6;
    let hama = run_bsp_pagerank(&g, &edge_cut, &cluster, eps, 200);
    let cy = run_cyclops_pagerank(&g, &edge_cut, &cluster, eps, 200);
    assert!(
        (cy.counters.messages as f64) < 0.8 * hama.counters.messages as f64,
        "cyclops {} vs hama {}",
        cy.counters.messages,
        hama.counters.messages
    );
    let vertex_cut = RandomVertexCut::default().partition(&g, 6);
    let gas = run_gas_pagerank(&g, &vertex_cut, &cluster, eps, 200);
    assert!(
        gas.counters.messages > cy.counters.messages * 3,
        "gas {} vs cyclops {}",
        gas.counters.messages,
        cy.counters.messages
    );
}
