//! Bucketed (delta-stepping) execution equivalence tests.
//!
//! Non-negative edge weights make SSSP relaxation a min-fold over path
//! sums, so *any* drain order reaches the same fixpoint with bitwise
//! identical distances. These tests pin that property on random weighted
//! graphs across all three bucketed engines (flat Cyclops, CyclopsMT,
//! BSP) against the barrier-per-superstep oracle, and pin the det bucket
//! mode's trace against itself across thread counts.

use cyclops::prelude::*;
use cyclops_algos::sssp::{run_bsp_sssp_bucketed, run_cyclops_sssp, run_cyclops_sssp_bucketed};
use cyclops_net::trace::{diff, read_jsonl, RunTrace, TraceSink};
use cyclops_net::BucketMode;
use proptest::prelude::*;

/// A random directed weighted graph: vertex count, edge list, and a bucket
/// width (0.0 = auto-tune from the mean edge weight).
fn arb_graph_and_width() -> impl Strategy<Value = (Graph, f64)> {
    (2usize..28).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32, 1u32..1000), 1..120);
        (edges, 0u32..4).prop_map(move |(edges, w)| {
            let mut b = GraphBuilder::new(n);
            for (s, t, milli) in edges {
                // Weights in (0, 10): small enough that several hops land in
                // one bucket, so fused rounds actually exercise re-entry.
                b.add_weighted_edge(s, t, f64::from(milli) / 100.0);
            }
            let width = match w {
                0 => 0.0, // auto
                1 => 0.25,
                2 => 1.5,
                _ => 50.0, // effectively one bucket for the whole run
            };
            (b.build(), width)
        })
    })
}

proptest! {
    /// Bucketed SSSP distances are bitwise equal to the unbucketed
    /// barrier-per-superstep run on all three engines, in both det and
    /// fast mode, for arbitrary graphs and bucket widths.
    #[test]
    fn bucketed_sssp_matches_barrier_per_superstep((g, width) in arb_graph_and_width()) {
        let p = HashPartitioner.partition(&g, 3);
        let oracle = run_cyclops_sssp(&g, &p, &ClusterSpec::flat(3, 1), 0, 100_000);

        let flat_det = run_cyclops_sssp_bucketed(
            &g, &p, &ClusterSpec::flat(3, 1), 0, 100_000, width, BucketMode::Det, 0, None,
        );
        prop_assert_eq!(&oracle.values, &flat_det.values, "flat cyclops det");

        let flat_fast = run_cyclops_sssp_bucketed(
            &g, &p, &ClusterSpec::flat(3, 1), 0, 100_000, width, BucketMode::Fast, 0, None,
        );
        prop_assert_eq!(&oracle.values, &flat_fast.values, "flat cyclops fast");

        let mt = run_cyclops_sssp_bucketed(
            &g, &p, &ClusterSpec::mt(3, 2, 2), 0, 100_000, width, BucketMode::Det, 0, None,
        );
        prop_assert_eq!(&oracle.values, &mt.values, "cyclops-mt det");

        let bsp = run_bsp_sssp_bucketed(
            &g, &p, &ClusterSpec::flat(3, 1), 0, 100_000, width, BucketMode::Det,
        );
        prop_assert_eq!(&oracle.values, &bsp.values, "bsp det");
    }
}

/// Det bucket mode fixes the in-bucket drain order, so the full trace —
/// counters and per-publication value digests — is identical whatever the
/// per-worker thread count.
#[test]
fn det_bucket_trace_is_stable_across_thread_counts() {
    let g = Dataset::RoadCa.generate_scaled(0.03, 7);
    let p = HashPartitioner.partition(&g, 4);
    let dir = std::env::temp_dir().join(format!("cyclops-bucket-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let run = |cluster: ClusterSpec, name: &str| {
        let sink = TraceSink::with_values("cyclops", &cluster);
        let r = run_cyclops_sssp_bucketed(
            &g,
            &p,
            &cluster,
            0,
            100_000,
            0.0, // auto width
            BucketMode::Det,
            0,
            Some(&sink),
        );
        let mut sink = sink;
        assert_eq!(sink.dropped_records(), 0, "ring buffer overflowed");
        // Round-trip through JSONL so the comparison covers exactly what
        // the CLI's trace-diff sees.
        let path = dir.join(name);
        sink.write_jsonl(path.to_str().unwrap()).unwrap();
        (r, read_jsonl(path.to_str().unwrap()).unwrap())
    };

    // Same 4 workers and the same partition; 1 thread vs 3 compute threads
    // and 2 receivers inside each worker.
    let (r1, t1): (_, RunTrace) = run(ClusterSpec::flat(4, 1), "flat.jsonl");
    let (r3, t3) = run(ClusterSpec::mt(4, 3, 2), "mt.jsonl");

    assert_eq!(r1.values, r3.values);
    assert_eq!(r1.supersteps, r3.supersteps);
    assert_eq!(
        diff::first_divergence(&t1, &t3, false),
        None,
        "counter diff"
    );
    assert_eq!(diff::first_divergence(&t1, &t3, true), None, "values diff");
    std::fs::remove_dir_all(&dir).ok();
}
