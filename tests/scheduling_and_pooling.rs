//! Regression tests for PR 3: skew-aware compute scheduling and the
//! zero-allocation send path.
//!
//! Three properties: (1) the static and dynamic schedulers produce
//! bitwise-identical results *and* bitwise-identical values-mode traces for
//! PageRank, SSSP, and connected components — the determinism story that
//! makes the dynamic scheduler a pure performance dial; (2) with send-buffer
//! pooling, steady-state supersteps allocate nothing: total send allocation
//! is a warm-up constant in the number of lanes × destinations, not a
//! function of message count (the Table 2 story); (3) pooling itself does
//! not change results or wire bytes.

use cyclops::prelude::*;
use cyclops_algos::cc::{run_cyclops_cc_sched, symmetrize};
use cyclops_algos::pagerank::run_cyclops_pagerank_sched;
use cyclops_algos::sssp::run_cyclops_sssp_sched;
use cyclops_engine::Sched;
use cyclops_net::trace::{diff, RunTrace, TraceSink};

fn finish(mut sink: TraceSink) -> RunTrace {
    assert_eq!(sink.dropped_records(), 0, "ring buffer overflowed");
    RunTrace {
        spans: Vec::new(),
        mem: Vec::new(),
        meta: sink.meta().clone(),
        records: sink.take_records(),
    }
}

/// Static and dynamic scheduling must be observationally equivalent down to
/// the values-mode trace: same per-superstep counters, same wire bytes,
/// same publication digests. CyclopsMT topology so multiple compute threads
/// actually race for chunks.
#[test]
fn schedulers_produce_identical_pagerank_traces() {
    let g = Dataset::GWeb.generate_scaled(0.04, 7);
    let cluster = ClusterSpec::mt(2, 3, 1);
    let p = HashPartitioner.partition(&g, cluster.num_workers());

    let sink_s = TraceSink::with_values("cyclops", &cluster);
    let rs = run_cyclops_pagerank_sched(&g, &p, &cluster, 1e-9, 60, Sched::Static, Some(&sink_s));
    let sink_d = TraceSink::with_values("cyclops", &cluster);
    let rd = run_cyclops_pagerank_sched(&g, &p, &cluster, 1e-9, 60, Sched::Dynamic, Some(&sink_d));

    assert_eq!(rs.supersteps, rd.supersteps);
    for (v, (a, b)) in rs.values.iter().zip(&rd.values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "vertex {v}: {a} vs {b}");
    }
    assert_eq!(
        diff::first_divergence(&finish(sink_s), &finish(sink_d), true),
        None,
        "static and dynamic traces must be indistinguishable"
    );
}

#[test]
fn schedulers_produce_identical_sssp_traces() {
    let g = cyclops_graph::gen::road_lattice(16, 16, 0.9, 0.1, 11);
    let cluster = ClusterSpec::mt(2, 2, 1);
    let p = HashPartitioner.partition(&g, cluster.num_workers());

    let sink_s = TraceSink::with_values("cyclops", &cluster);
    let rs = run_cyclops_sssp_sched(&g, &p, &cluster, 0, 10_000, Sched::Static, Some(&sink_s));
    let sink_d = TraceSink::with_values("cyclops", &cluster);
    let rd = run_cyclops_sssp_sched(&g, &p, &cluster, 0, 10_000, Sched::Dynamic, Some(&sink_d));

    assert_eq!(rs.supersteps, rd.supersteps);
    for (v, (a, b)) in rs.values.iter().zip(&rd.values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "vertex {v}: {a} vs {b}");
    }
    assert_eq!(
        diff::first_divergence(&finish(sink_s), &finish(sink_d), true),
        None
    );
}

#[test]
fn schedulers_produce_identical_cc_traces() {
    let g = symmetrize(&cyclops_graph::gen::erdos_renyi(500, 900, 23));
    let cluster = ClusterSpec::mt(2, 3, 1);
    let p = HashPartitioner.partition(&g, cluster.num_workers());

    let sink_s = TraceSink::with_values("cyclops", &cluster);
    let rs = run_cyclops_cc_sched(&g, &p, &cluster, Sched::Static, Some(&sink_s));
    let sink_d = TraceSink::with_values("cyclops", &cluster);
    let rd = run_cyclops_cc_sched(&g, &p, &cluster, Sched::Dynamic, Some(&sink_d));

    assert_eq!(rs.supersteps, rd.supersteps);
    assert_eq!(rs.values, rd.values);
    assert_eq!(
        diff::first_divergence(&finish(sink_s), &finish(sink_d), true),
        None
    );
}

/// The Table 2 claim: with pooled send buffers, allocation is a one-time
/// warm-up cost — doubling the superstep count roughly doubles the wire
/// bytes but adds *zero* new allocation, i.e. per-superstep allocation is
/// O(destination machines), not O(messages).
#[test]
fn pooled_send_path_stops_allocating_after_warmup() {
    let g = Dataset::GWeb.generate_scaled(0.05, 3);
    let cluster = ClusterSpec::flat(3, 2);
    let p = HashPartitioner.partition(&g, cluster.num_workers());

    // epsilon = 0 keeps every vertex active, so every superstep ships the
    // same full frontier and steady-state batch sizes are constant.
    let short = run_cyclops_pagerank_sched(&g, &p, &cluster, 0.0, 10, Sched::Dynamic, None);
    let long = run_cyclops_pagerank_sched(&g, &p, &cluster, 0.0, 20, Sched::Dynamic, None);

    assert!(
        short.counters.message_bytes_allocated > 0,
        "warm-up allocates"
    );
    assert!(
        long.counters.bytes > short.counters.bytes * 18 / 10,
        "doubling supersteps must roughly double wire bytes \
         ({} vs {})",
        long.counters.bytes,
        short.counters.bytes
    );
    assert_eq!(
        long.counters.message_bytes_allocated, short.counters.message_bytes_allocated,
        "steady-state supersteps must allocate nothing: all growth happens \
         in the first supersteps' warm-up"
    );
    // The warm-up itself is bounded by one max-size batch per sender lane —
    // a far cry from one allocation per wire byte.
    assert!(
        long.counters.message_bytes_allocated < long.counters.bytes as u64 / 4,
        "total allocation ({}) must be a small fraction of wire bytes ({})",
        long.counters.message_bytes_allocated,
        long.counters.bytes
    );
}

/// Turning the pool off must change allocation accounting only — results,
/// message counts, and wire bytes are identical.
#[test]
fn pooling_is_invisible_except_to_the_allocator() {
    use cyclops_algos::pagerank::CyclopsPageRank;
    use cyclops_engine::{run_cyclops, Convergence, CyclopsConfig};

    let g = Dataset::Amazon.generate_scaled(0.05, 5);
    let cluster = ClusterSpec::flat(2, 2);
    let p = HashPartitioner.partition(&g, cluster.num_workers());
    let config = |pooled| CyclopsConfig {
        cluster,
        max_supersteps: 12,
        convergence: Convergence::ActiveVertices,
        pooled,
        ..Default::default()
    };

    let pooled = run_cyclops(&CyclopsPageRank { epsilon: 0.0 }, &g, &p, &config(true));
    let fresh = run_cyclops(&CyclopsPageRank { epsilon: 0.0 }, &g, &p, &config(false));

    assert_eq!(pooled.values, fresh.values);
    assert_eq!(pooled.counters.messages, fresh.counters.messages);
    assert_eq!(pooled.counters.bytes, fresh.counters.bytes);
    // Unpooled: every batch is a fresh allocation, so accounting equals the
    // wire. Pooled: a small warm-up fraction.
    assert_eq!(
        fresh.counters.message_bytes_allocated,
        fresh.counters.bytes as u64
    );
    assert!(pooled.counters.message_bytes_allocated < fresh.counters.message_bytes_allocated / 4);
}
