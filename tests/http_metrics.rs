//! Integration test of the live `/metrics` scrape endpoint.
//!
//! The acceptance bar: a raw HTTP `GET /metrics` against a running
//! [`MetricsServer`] returns *byte-identical* output to
//! [`render_prometheus`] over the same registry — the exposition a
//! `--prom FILE` run would write. The scrape happens after a real traced
//! PageRank run has populated the global registry through the engines'
//! resolve-once observer handles (phase histograms + hot-vertex gauges),
//! so the test also pins that the listener serves live engine metrics,
//! not a canned snapshot.
//!
//! One `#[test]` only: the registry is process-global and the run must
//! finish before the body/`render_prometheus` comparison, so splitting
//! into parallel tests would race the exposition.

use cyclops::obs::{install_global, render_prometheus, MetricsServer};
use cyclops::prelude::*;
use cyclops_algos::pagerank::run_cyclops_pagerank_traced;
use cyclops_net::trace::TraceSink;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Sends one request line and returns (status line, headers, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, Vec<String>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = String::from_utf8(raw[..split].to_vec()).expect("headers are utf-8");
    let body = raw[split + 4..].to_vec();
    let mut lines = head.split("\r\n").map(str::to_string);
    let status = lines.next().expect("status line");
    (status, lines.collect(), body)
}

#[test]
fn scraping_metrics_matches_the_prom_file_exposition() {
    let registry = install_global();

    // A real traced run with hot-vertex capture: resolves PhaseHists and
    // HotObs against the global registry and populates both.
    let g = Dataset::Amazon.generate_scaled(0.05, 1);
    let cluster = ClusterSpec::flat(2, 2);
    let p = HashPartitioner.partition(&g, 4);
    let sink = TraceSink::new("cyclops", &cluster).with_hot_k(4);
    run_cyclops_pagerank_traced(&g, &p, &cluster, 0.0, 6, Some(&sink));

    let mut server = MetricsServer::start("127.0.0.1:0", registry).expect("bind scrape endpoint");
    let addr = server.addr();

    // The run is complete, so the live scrape and a --prom-style render of
    // the same registry must be byte-identical.
    let (status, headers, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let expected = render_prometheus(registry);
    assert_eq!(
        body,
        expected.as_bytes(),
        "GET /metrics must match render_prometheus byte-for-byte"
    );
    assert!(
        headers
            .iter()
            .any(|h| h.eq_ignore_ascii_case(&format!("content-length: {}", body.len()))),
        "Content-Length must match the body: {headers:?}"
    );
    assert!(
        headers.iter().any(|h| h
            .to_ascii_lowercase()
            .starts_with("content-type: text/plain")),
        "exposition content type: {headers:?}"
    );

    // The engine's observers actually landed in the exposition.
    let text = String::from_utf8(body).unwrap();
    assert!(
        text.contains("cyclops_phase_ns"),
        "phase histograms:\n{text}"
    );
    assert!(
        text.contains("cyclops_hot_vertex_cost"),
        "hot gauges:\n{text}"
    );
    // The transport's worker-pair traffic counters: the full workers²
    // family resolves at construction, and the traced run pushed real
    // cross-worker traffic through at least one off-diagonal pair.
    assert!(
        text.contains("cyclops_comm_pair_messages_total"),
        "comm pair messages:\n{text}"
    );
    assert!(
        text.contains("cyclops_comm_pair_bytes"),
        "comm pair bytes:\n{text}"
    );
    let off_diagonal_traffic = text.lines().any(|l| {
        l.starts_with("cyclops_comm_pair_bytes{")
            && l.contains("src=\"0\"")
            && !l.contains("dst=\"0\"")
            && !l.trim_end().ends_with(" 0")
    });
    assert!(
        off_diagonal_traffic,
        "no cross-worker bytes recorded:\n{text}"
    );

    // Liveness probe and unknown routes.
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, b"ok\n");
    let (status, _, _) = http_get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // Shutdown releases the port.
    server.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must stop accepting after shutdown"
    );
}
