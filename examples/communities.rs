//! Community detection on a collaboration network (the paper's DBLP
//! workload) with label propagation on Cyclops.
//!
//! ```sh
//! cargo run --release --example communities
//! ```
//!
//! Shows dynamic computation at work: as labels stabilize, whole regions of
//! the graph stop computing, which the per-superstep activity trace makes
//! visible.

use cyclops::prelude::*;
use cyclops_algos::cd::run_cyclops_cd;

fn main() {
    let graph = Dataset::Dblp.generate_scaled(0.3, Dataset::Dblp.default_seed());
    println!(
        "DBLP stand-in: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let cluster = ClusterSpec::flat(4, 2);
    let partition = MultilevelPartitioner::default().partition(&graph, cluster.num_workers());
    println!(
        "multilevel partition: replication factor {:.2} (hash would be {:.2})",
        partition.replication_factor(&graph),
        HashPartitioner
            .partition(&graph, cluster.num_workers())
            .replication_factor(&graph)
    );

    let result = run_cyclops_cd(&graph, &partition, &cluster, 30);

    println!("\nactivity per superstep (dynamic computation):");
    for s in &result.stats {
        let bar_len = 40 * s.active_vertices / graph.num_vertices().max(1);
        println!(
            "  step {:>2}: {:>6} active |{}",
            s.superstep,
            s.active_vertices,
            "#".repeat(bar_len)
        );
    }

    // Count communities and show the largest.
    let mut sizes: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for &label in &result.values {
        *sizes.entry(label).or_insert(0) += 1;
    }
    let mut by_size: Vec<(u32, usize)> = sizes.into_iter().collect();
    by_size.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!(
        "\n{} communities found in {} supersteps; largest:",
        by_size.len(),
        result.supersteps
    );
    for (label, size) in by_size.iter().take(5) {
        println!("  community {label}: {size} members");
    }
}
