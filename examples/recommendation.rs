//! Movie recommendation with ALS on the CyclopsMT engine.
//!
//! ```sh
//! cargo run --release --example recommendation
//! ```
//!
//! Generates a users×movies ratings graph (the paper's SYN-GL workload),
//! factorizes it with alternating least squares on a hierarchical
//! 3-machine × 4-thread cluster, shows the fit improving per iteration, and
//! prints recommendations for one user.

use cyclops::prelude::*;
use cyclops_algos::als::{rating_rmse, run_cyclops_als, AlsParams};
use cyclops_algos::linalg::dot;
use cyclops_graph::gen::bipartite_ratings;

fn main() {
    let users = 600;
    let movies = 120;
    let (graph, _) = bipartite_ratings(users, movies, 6000, 0.9, 2024);
    println!(
        "ratings graph: {users} users x {movies} movies, {} rating edges",
        graph.num_edges() / 2
    );

    let params = AlsParams {
        users,
        dim: 8,
        lambda: 0.05,
    };
    let cluster = ClusterSpec::mt(3, 4, 2);

    println!("\n{:<10} {:>8}", "iteration", "RMSE");
    let mut factors = Vec::new();
    for iters in [1usize, 2, 4, 8] {
        let partition = HashPartitioner.partition(&graph, cluster.num_workers());
        let result = run_cyclops_als(&graph, &partition, &cluster, params, iters);
        let rmse = rating_rmse(&graph, &result.values);
        println!("{iters:<10} {rmse:>8.4}");
        factors = result.values;
    }

    // Recommend unseen movies for user 0: highest predicted rating.
    let user = 0u32;
    let seen: Vec<u32> = graph.out_neighbors(user).to_vec();
    let mut predictions: Vec<(u32, f64)> = (users as u32..(users + movies) as u32)
        .filter(|m| !seen.contains(m))
        .map(|m| (m, dot(&factors[user as usize], &factors[m as usize])))
        .collect();
    predictions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\nuser {user} rated {} movies; top recommendations:",
        seen.len()
    );
    for (movie, score) in predictions.iter().take(5) {
        println!(
            "  movie {:>4}: predicted rating {score:.2}",
            movie - users as u32
        );
    }
}
