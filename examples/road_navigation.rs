//! Shortest paths on a road network (the paper's RoadCA workload): SSSP on
//! Cyclops, with the frontier wave visible in the per-superstep statistics.
//!
//! ```sh
//! cargo run --release --example road_navigation
//! ```

use cyclops::prelude::*;
use cyclops_algos::sssp::run_cyclops_sssp;
use cyclops_graph::gen::road_lattice;
use cyclops_graph::reference;

fn main() {
    // A 60x60 road grid with log-normal travel times (as in §6.2).
    let graph = road_lattice(60, 60, 0.92, 0.05, 7);
    println!(
        "road network: {} junctions, {} road segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    let cluster = ClusterSpec::flat(4, 2);
    let partition = MultilevelPartitioner::default().partition(&graph, cluster.num_workers());
    let source = 0;
    let result = run_cyclops_sssp(&graph, &partition, &cluster, source, 100_000);

    // The push-mode frontier: a wave expanding from the source.
    println!("\nfrontier size per superstep (first 30):");
    for s in result.stats.iter().take(30) {
        println!(
            "  step {:>3}: {:>5} active |{}",
            s.superstep,
            s.active_vertices,
            "#".repeat(s.active_vertices / 4)
        );
    }

    // Validate against Dijkstra and show a few destinations.
    let expected = reference::sssp(&graph, source);
    let mut worst = 0.0f64;
    for (a, b) in result.values.iter().zip(&expected) {
        if b.is_finite() {
            worst = worst.max((a - b).abs());
        }
    }
    println!("\nmax deviation from Dijkstra: {worst:.2e} (must be ~0)");
    assert!(worst < 1e-9);

    let reachable = expected.iter().filter(|d| d.is_finite()).count();
    println!(
        "{} of {} junctions reachable from junction {source};",
        reachable,
        graph.num_vertices()
    );
    for dest in [59u32, 1800, 3599] {
        let d = result.values[dest as usize];
        if d.is_finite() {
            println!("  travel time to junction {dest}: {d:.2}");
        } else {
            println!("  junction {dest} unreachable");
        }
    }
    println!(
        "\n{} supersteps, {} sync messages, replication factor {:.2}",
        result.supersteps, result.counters.messages, result.replication_factor
    );
}
