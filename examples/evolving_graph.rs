//! Evolving-graph processing: PageRank over a web graph absorbing link
//! insertions incrementally (the paper's §8 future work, implemented in
//! `cyclops_engine::mutation`).
//!
//! ```sh
//! cargo run --release --example evolving_graph
//! ```
//!
//! A crawl discovers new links in batches; instead of recomputing PageRank
//! from scratch, each batch re-activates only the disturbed vertices and
//! lets dynamic computation propagate the correction wave.

use cyclops::prelude::*;
use cyclops_algos::pagerank::CyclopsPageRank;
use cyclops_engine::{run_cyclops, CyclopsConfig, MutationBatch, WarmStart};
use cyclops_graph::reference;

fn main() {
    let graph = Dataset::GWeb.generate_scaled(0.1, Dataset::GWeb.default_seed());
    let cluster = ClusterSpec::flat(3, 2);
    let partition_fn = |g: &cyclops_graph::Graph| HashPartitioner.partition(g, 6);
    let config = CyclopsConfig {
        cluster,
        max_supersteps: 300,
        ..Default::default()
    };
    let program = CyclopsPageRank { epsilon: 1e-9 };

    // Three batches of "newly crawled" links, each pointing at a popular hub.
    let n = graph.num_vertices() as u32;
    let batches: Vec<(MutationBatch, WarmStart)> = (0..3)
        .map(|round| {
            let add_edges = (0..5)
                .map(|i| ((round * 97 + i * 31 + 11) % n, (round * 13) % n, None))
                .collect();
            (
                MutationBatch {
                    add_edges,
                    ..Default::default()
                },
                WarmStart::Incremental,
            )
        })
        .collect();

    let evolving =
        cyclops_engine::run_cyclops_evolving(&program, &graph, partition_fn, &config, &batches);

    println!("epoch  supersteps  vertex-computes  messages");
    for (i, epoch) in evolving.epochs.iter().enumerate() {
        println!(
            "{:>5}  {:>10}  {:>15}  {:>8}",
            i,
            epoch.supersteps,
            epoch.stats.iter().map(|s| s.active_vertices).sum::<usize>(),
            epoch.counters.messages,
        );
    }

    // Verify the final state against a cold run on the final topology.
    let cold = run_cyclops(
        &program,
        &evolving.graph,
        &partition_fn(&evolving.graph),
        &config,
    );
    let diff = reference::l1_distance(evolving.final_values(), &cold.values);
    println!("\nL1 distance between incremental and cold final ranks: {diff:.2e}");
    assert!(diff < 1e-5);
    let initial: usize = evolving.epochs[0]
        .stats
        .iter()
        .map(|s| s.active_vertices)
        .sum();
    let increments: usize = evolving.epochs[1..]
        .iter()
        .flat_map(|e| e.stats.iter().map(|s| s.active_vertices))
        .sum();
    println!(
        "absorbing 15 new links cost {increments} vertex-computes vs {initial} for the initial run \
         ({:.0}x cheaper per batch than recomputing)",
        3.0 * initial as f64 / increments.max(1) as f64
    );
}
