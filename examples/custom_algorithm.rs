//! Writing your own vertex program: "infection spread with decay".
//!
//! ```sh
//! cargo run --release --example custom_algorithm
//! ```
//!
//! A tutorial-style walkthrough of the `CyclopsProgram` trait. The custom
//! algorithm: patient-zero vertices carry infection level 1.0; each
//! superstep a vertex's level becomes the maximum of its own and
//! `decay *` its in-neighbors' levels, stopping below a threshold. This is
//! a pull-mode, dynamically-converging computation — the shape the
//! distributed immutable view is built for — and it is *not* one of the
//! paper's four algorithms, so everything here goes through the public API
//! only.

use cyclops::prelude::*;
use cyclops_engine::{run_cyclops, CyclopsConfig, CyclopsContext, CyclopsProgram};
use cyclops_graph::gen::{rmat, RmatConfig};
use cyclops_graph::VertexId as V;

/// The program: per-vertex state is the infection level; the publication is
/// the level too (neighbors read it through the immutable view).
struct Infection {
    /// Initially infected vertices.
    seeds: Vec<V>,
    /// Attenuation per hop.
    decay: f64,
    /// Levels below this stop spreading.
    threshold: f64,
}

impl CyclopsProgram for Infection {
    type Value = f64;
    type Message = f64;

    /// Seeds start at level 1, everyone else at 0.
    fn init(&self, v: V, _g: &cyclops_graph::Graph) -> f64 {
        if self.seeds.contains(&v) {
            1.0
        } else {
            0.0
        }
    }

    /// Publish the initial level so neighbors can read it in superstep 0.
    fn init_message(&self, _v: V, _g: &cyclops_graph::Graph, value: &f64) -> Option<f64> {
        (*value > 0.0).then_some(*value)
    }

    /// Only seeds need to compute in superstep 0; everyone else sleeps
    /// until an infected in-neighbor activates them.
    fn initially_active(&self, v: V, _g: &cyclops_graph::Graph) -> bool {
        self.seeds.contains(&v)
    }

    fn compute(&self, ctx: &mut CyclopsContext<'_, f64, f64>) {
        // Pull the strongest incoming exposure through the immutable view.
        let exposure = ctx
            .in_messages()
            .map(|(level, _)| level * self.decay)
            .fold(0.0f64, f64::max)
            .max(*ctx.value());
        if exposure > *ctx.value() || (ctx.superstep() == 0 && *ctx.value() > 0.0) {
            ctx.set_value(exposure.max(*ctx.value()));
            // Spread onward only while the signal is strong enough;
            // otherwise this vertex simply deactivates (dynamic
            // computation ends the epidemic's frontier naturally).
            if *ctx.value() >= self.threshold {
                ctx.activate_neighbors(*ctx.value());
            }
        }
    }
}

fn main() {
    // A scale-free contact network.
    let graph = rmat(
        RmatConfig {
            scale: 12,
            edges: 40_000,
            ..Default::default()
        },
        7,
    );
    println!(
        "contact network: {} people, {} directed contacts",
        graph.num_vertices(),
        graph.num_edges()
    );

    let program = Infection {
        seeds: vec![42, 1337],
        decay: 0.7,
        threshold: 0.05,
    };
    let cluster = ClusterSpec::mt(3, 2, 1);
    let partition = HashPartitioner.partition(&graph, cluster.num_workers());
    let result = run_cyclops(
        &program,
        &graph,
        &partition,
        &CyclopsConfig {
            cluster,
            max_supersteps: 100,
            ..Default::default()
        },
    );

    // Infection histogram by level band.
    let bands = [1.0, 0.7, 0.49, 0.343, 0.24, 0.05, 0.0];
    println!("\ninfection levels after {} supersteps:", result.supersteps);
    for w in bands.windows(2) {
        let (hi, lo) = (w[0], w[1]);
        let count = result.values.iter().filter(|&&x| x <= hi && x > lo).count();
        println!("  ({lo:.3}, {hi:.3}]: {count:>6} people");
    }
    let untouched = result.values.iter().filter(|&&x| x == 0.0).count();
    println!("  untouched: {untouched:>10} people");

    // The frontier trace shows the epidemic wave growing then dying out as
    // decay pushes exposures below the threshold.
    println!("\nfrontier per superstep:");
    for s in &result.stats {
        println!(
            "  step {:>2}: {:>6} computing |{}",
            s.superstep,
            s.active_vertices,
            "#".repeat((s.active_vertices / 8).min(60))
        );
    }
    assert!(result.supersteps < 100, "decay must quench the spread");
}
