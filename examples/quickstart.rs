//! Quickstart: PageRank over a tiny web graph on the Cyclops engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 6-vertex graph (the shape of the paper's Figure 6 example),
//! partitions it across a simulated 3-machine cluster, runs PageRank through
//! the distributed immutable view, and prints ranks plus the run's
//! communication statistics.

use cyclops::prelude::*;
use cyclops_algos::pagerank::run_cyclops_pagerank;

fn main() {
    // A small directed web graph: vertex ids are "pages", edges are links.
    let mut builder = GraphBuilder::new(6);
    for (src, dst) in [
        (0, 1),
        (1, 0),
        (0, 2),
        (2, 1),
        (2, 3),
        (3, 2),
        (5, 2),
        (4, 5),
        (5, 4),
        (3, 4),
    ] {
        builder.add_edge(src, dst);
    }
    let graph = builder.build();

    // Three simulated machines, one worker each; vertices assigned by hash.
    let cluster = ClusterSpec::flat(3, 1);
    let partition = HashPartitioner.partition(&graph, cluster.num_workers());

    // Run to a per-vertex error of 1e-9 (at most 200 supersteps).
    let result = run_cyclops_pagerank(&graph, &partition, &cluster, 1e-9, 200);

    println!("PageRank over {} supersteps:", result.supersteps);
    let mut ranked: Vec<(u32, f64)> = result
        .values
        .iter()
        .enumerate()
        .map(|(v, &r)| (v as u32, r))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (v, r) in &ranked {
        println!("  page {v}: {r:.5}");
    }
    println!(
        "replication factor {:.2}, {} sync messages, {} bytes on the wire",
        result.replication_factor, result.counters.messages, result.counters.bytes
    );
    println!(
        "ingress: load {:?}, replicate {:?}, init {:?}",
        result.ingress.load, result.ingress.replicate, result.ingress.init
    );
}
