//! Web ranking at dataset scale: PageRank on the GWeb stand-in, comparing
//! all three engines (Hama BSP, Cyclops, PowerGraph GAS) on the same input.
//!
//! ```sh
//! cargo run --release --example web_ranking
//! ```
//!
//! Demonstrates the paper's core claims end to end: the engines agree on
//! the ranking, but Cyclops computes fewer vertices (dynamic computation)
//! and sends far fewer messages (one per replica instead of one per edge,
//! and no 5-message GAS round-trips).

use cyclops::prelude::*;
use cyclops_algos::pagerank::{run_bsp_pagerank, run_cyclops_pagerank, run_gas_pagerank};
use cyclops_partition::{RandomVertexCut, VertexCutPartitioner};

fn main() {
    let graph = Dataset::GWeb.generate_scaled(0.1, Dataset::GWeb.default_seed());
    println!(
        "GWeb stand-in: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let cluster = ClusterSpec::flat(6, 2);
    let epsilon = 1e-6;
    let edge_cut = HashPartitioner.partition(&graph, cluster.num_workers());
    let vertex_cut = RandomVertexCut::default().partition(&graph, cluster.num_workers());

    let hama = run_bsp_pagerank(&graph, &edge_cut, &cluster, epsilon, 300);
    let cyclops = run_cyclops_pagerank(&graph, &edge_cut, &cluster, epsilon, 300);
    let gas = run_gas_pagerank(&graph, &vertex_cut, &cluster, epsilon, 300);

    println!(
        "\n{:<12} {:>10} {:>12} {:>14} {:>10}",
        "engine", "supersteps", "messages", "vertex-computes", "time"
    );
    for (name, supersteps, messages, computes, elapsed) in [
        (
            "Hama",
            hama.supersteps,
            hama.counters.messages,
            hama.stats.iter().map(|s| s.active_vertices).sum::<usize>(),
            hama.elapsed,
        ),
        (
            "Cyclops",
            cyclops.supersteps,
            cyclops.counters.messages,
            cyclops
                .stats
                .iter()
                .map(|s| s.active_vertices)
                .sum::<usize>(),
            cyclops.elapsed,
        ),
        (
            "PowerGraph",
            gas.supersteps,
            gas.counters.messages,
            gas.stats.iter().map(|s| s.active_vertices).sum::<usize>(),
            gas.elapsed,
        ),
    ] {
        println!(
            "{name:<12} {supersteps:>10} {messages:>12} {computes:>14} {:>9.3}s",
            elapsed.as_secs_f64()
        );
    }

    // The three engines agree on the top pages.
    let top = |values: &[f64]| -> Vec<u32> {
        let mut idx: Vec<u32> = (0..values.len() as u32).collect();
        idx.sort_by(|&a, &b| values[b as usize].partial_cmp(&values[a as usize]).unwrap());
        idx.truncate(5);
        idx
    };
    println!("\ntop-5 pages: Hama {:?}", top(&hama.values));
    println!("             Cyclops {:?}", top(&cyclops.values));
    println!("             PowerGraph {:?}", top(&gas.values));
    assert_eq!(top(&hama.values), top(&cyclops.values));
    assert_eq!(top(&hama.values), top(&gas.values));
    println!("\nall engines agree on the ranking ✔");
}
